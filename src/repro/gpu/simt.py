"""SIMT predication helpers and warp-divergence accounting.

The overlapped blocking scheme of Section 4.5 exists precisely to avoid
warp divergence; these helpers let kernels and tests measure how divergent a
given predicate actually is, so the "no branching" property of the SSAM
kernels can be asserted rather than assumed.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def active_warp_count(mask: np.ndarray, warp_size: int = 32) -> int:
    """Number of warps with at least one active lane under ``mask``."""
    mask = np.asarray(mask, dtype=bool).reshape(-1)
    if mask.size == 0:
        return 0
    pad = (-mask.size) % warp_size
    if pad:
        mask = np.concatenate([mask, np.zeros(pad, dtype=bool)])
    grouped = mask.reshape(-1, warp_size)
    return int(grouped.any(axis=1).sum())


def divergent_warp_count(mask: np.ndarray, warp_size: int = 32) -> int:
    """Number of warps whose lanes disagree under ``mask`` (partial warps)."""
    mask = np.asarray(mask, dtype=bool).reshape(-1)
    if mask.size == 0:
        return 0
    pad = (-mask.size) % warp_size
    if pad:
        # padding lanes do not exist on hardware; exclude them from the check
        grouped_any = []
        grouped_all = []
        full = mask[: mask.size - (mask.size % warp_size)].reshape(-1, warp_size)
        grouped_any.extend(full.any(axis=1).tolist())
        grouped_all.extend(full.all(axis=1).tolist())
        tail = mask[mask.size - (mask.size % warp_size):]
        if tail.size:
            grouped_any.append(bool(tail.any()))
            grouped_all.append(bool(tail.all()))
        any_arr = np.array(grouped_any)
        all_arr = np.array(grouped_all)
    else:
        grouped = mask.reshape(-1, warp_size)
        any_arr = grouped.any(axis=1)
        all_arr = grouped.all(axis=1)
    return int((any_arr & ~all_arr).sum())


def grouped_warp_counts(lane_mask: np.ndarray, warp_size: int = 32) -> Tuple[int, int]:
    """``(active_warps, divergent_warps)`` for a batch of blocks at once.

    ``lane_mask`` has the lane axis last (e.g. shape ``(blocks, threads)``)
    and its last axis must be a multiple of the warp size; the counts are
    summed over every warp of every leading index.  This is the vectorised
    form of :func:`active_warp_count` / :func:`divergent_warp_count` used by
    the batched execution engine.
    """
    mask = np.asarray(lane_mask, dtype=bool)
    if mask.size == 0:
        return 0, 0
    grouped = mask.reshape(-1, warp_size)
    any_arr = grouped.any(axis=1)
    all_arr = grouped.all(axis=1)
    return int(any_arr.sum()), int((any_arr & ~all_arr).sum())


def predicate_statistics(mask: np.ndarray, warp_size: int = 32) -> Tuple[int, int, float]:
    """Return ``(active_warps, divergent_warps, active_lane_fraction)``."""
    mask = np.asarray(mask, dtype=bool).reshape(-1)
    active = active_warp_count(mask, warp_size)
    divergent = divergent_warp_count(mask, warp_size)
    fraction = float(mask.mean()) if mask.size else 0.0
    return active, divergent, fraction
