"""Per-block scratchpad (CUDA shared memory) with bank-conflict accounting.

Shared memory on every evaluated architecture has 32 banks of 4 bytes; a
warp access that maps two or more *distinct* addresses to the same bank is
serialised (its cost multiplies by the conflict degree), while all lanes
reading the *same* address is a broadcast and costs a single access.
The SSAM convolution kernel deliberately uses the broadcast pattern for
filter weights (Section 4.6), which is why the distinction is modelled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..dtypes import resolve_precision
from ..errors import ResourceExhaustedError, SimulationError


@dataclass
class SharedArray:
    """A named allocation inside a block's shared memory."""

    name: str
    array: np.ndarray
    offset_bytes: int

    @property
    def nbytes(self) -> int:
        return int(self.array.nbytes)

    @property
    def flat(self) -> np.ndarray:
        return self.array.reshape(-1)


def bank_conflict_degree(flat_indices: np.ndarray, itemsize: int,
                         banks: int = 32, bank_bytes: int = 4) -> int:
    """Worst-case serialisation factor of one warp shared-memory access.

    Parameters
    ----------
    flat_indices:
        Element indices accessed by the active lanes of one warp.
    itemsize:
        Element size in bytes (8-byte accesses occupy two banks each).

    Returns
    -------
    int
        1 for conflict-free or broadcast accesses, otherwise the maximum
        number of distinct addresses that fall into one bank.
    """
    if flat_indices.size == 0:
        return 0
    addresses = flat_indices.astype(np.int64) * itemsize
    unique_addresses = np.unique(addresses)
    if unique_addresses.size == 1:
        return 1  # broadcast
    words = unique_addresses // bank_bytes
    degree = 1
    # 8-byte elements touch two consecutive banks; account for both words.
    words_per_element = max(1, itemsize // bank_bytes)
    for sub in range(words_per_element):
        bank_ids = (words + sub) % banks
        counts = np.bincount(bank_ids.astype(np.int64), minlength=banks)
        degree = max(degree, int(counts.max()))
    return degree


class SharedMemory:
    """Shared-memory arena for one thread block."""

    def __init__(self, capacity_bytes: int, banks: int = 32, bank_bytes: int = 4) -> None:
        self.capacity_bytes = int(capacity_bytes)
        self.banks = banks
        self.bank_bytes = bank_bytes
        self._arrays: Dict[str, SharedArray] = {}
        self._used_bytes = 0
        #: cumulative conflict-weighted access count (for the profiler)
        self.access_count = 0.0
        self.broadcast_count = 0.0
        self.conflict_extra = 0.0
        self.bytes_read = 0.0
        self.bytes_written = 0.0

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated in this block's scratchpad."""
        return self._used_bytes

    def allocate(self, name: str, shape: Tuple[int, ...],
                 precision: object = "float32") -> SharedArray:
        """Allocate a named shared array (like ``__shared__ T name[...]``)."""
        if name in self._arrays:
            raise SimulationError(f"shared array {name!r} already allocated")
        prec = resolve_precision(precision)
        array = np.zeros(shape, dtype=prec.numpy_dtype)
        if self._used_bytes + array.nbytes > self.capacity_bytes:
            raise ResourceExhaustedError(
                f"shared memory exhausted: {self._used_bytes + array.nbytes} bytes "
                f"requested, {self.capacity_bytes} available per block"
            )
        shared = SharedArray(name=name, array=array, offset_bytes=self._used_bytes)
        self._arrays[name] = shared
        self._used_bytes += int(array.nbytes)
        return shared

    def get(self, name: str) -> SharedArray:
        """Look up a previously allocated shared array."""
        try:
            return self._arrays[name]
        except KeyError as exc:
            raise SimulationError(f"shared array {name!r} was never allocated") from exc

    # -- access accounting -----------------------------------------------------
    def record_load(self, shared: SharedArray, flat_indices: np.ndarray) -> Tuple[int, bool]:
        """Account for one warp load; returns (conflict degree, is_broadcast)."""
        degree = bank_conflict_degree(flat_indices, shared.array.itemsize,
                                      self.banks, self.bank_bytes)
        broadcast = bool(flat_indices.size > 0 and np.unique(flat_indices).size == 1)
        if broadcast:
            self.broadcast_count += 1
        else:
            self.access_count += degree
            self.conflict_extra += max(0, degree - 1)
        self.bytes_read += float(flat_indices.size * shared.array.itemsize)
        return degree, broadcast

    def record_store(self, shared: SharedArray, flat_indices: np.ndarray) -> int:
        """Account for one warp store; returns the conflict degree."""
        degree = bank_conflict_degree(flat_indices, shared.array.itemsize,
                                      self.banks, self.bank_bytes)
        self.access_count += degree
        self.conflict_extra += max(0, degree - 1)
        self.bytes_written += float(flat_indices.size * shared.array.itemsize)
        return degree
