"""Per-block scratchpad (CUDA shared memory) with bank-conflict accounting.

Shared memory on every evaluated architecture has 32 banks of 4 bytes; a
warp access that maps two or more *distinct* addresses to the same bank is
serialised (its cost multiplies by the conflict degree), while all lanes
reading the *same* address is a broadcast and costs a single access.
The SSAM convolution kernel deliberately uses the broadcast pattern for
filter weights (Section 4.6), which is why the distinction is modelled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..dtypes import resolve_precision
from ..errors import ResourceExhaustedError, SimulationError
from .memory import rowwise_sorted_firsts


@dataclass
class SharedArray:
    """A named allocation inside a block's shared memory."""

    name: str
    array: np.ndarray
    offset_bytes: int

    @property
    def nbytes(self) -> int:
        return int(self.array.nbytes)

    @property
    def flat(self) -> np.ndarray:
        return self.array.reshape(-1)


def bank_conflict_degree(flat_indices: np.ndarray, itemsize: int,
                         banks: int = 32, bank_bytes: int = 4) -> int:
    """Worst-case serialisation factor of one warp shared-memory access.

    Parameters
    ----------
    flat_indices:
        Element indices accessed by the active lanes of one warp.
    itemsize:
        Element size in bytes (8-byte accesses occupy two banks each).

    Returns
    -------
    int
        1 for conflict-free or broadcast accesses, otherwise the maximum
        number of distinct addresses that fall into one bank.
    """
    if flat_indices.size == 0:
        return 0
    addresses = flat_indices.astype(np.int64) * itemsize
    unique_addresses = np.unique(addresses)
    if unique_addresses.size == 1:
        return 1  # broadcast
    words = unique_addresses // bank_bytes
    degree = 1
    # 8-byte elements touch two consecutive banks; account for both words.
    words_per_element = max(1, itemsize // bank_bytes)
    for sub in range(words_per_element):
        bank_ids = (words + sub) % banks
        counts = np.bincount(bank_ids.astype(np.int64), minlength=banks)
        degree = max(degree, int(counts.max()))
    return degree


def bank_conflict_profile(flat_indices: np.ndarray, itemsize: int,
                          banks: int = 32, bank_bytes: int = 4,
                          mask: Optional[np.ndarray] = None
                          ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised :func:`bank_conflict_degree` over a matrix of warp accesses.

    Each row of ``flat_indices`` holds the element indices of one warp-level
    shared-memory access; ``mask`` (same shape) marks the active lanes.

    Returns
    -------
    (degrees, broadcasts, active_counts):
        Per-row arrays.  ``degrees[r]`` equals
        ``bank_conflict_degree(row_r_active, itemsize, banks, bank_bytes)``
        (0 for rows with no active lane), ``broadcasts[r]`` is True when all
        active lanes of the row read the same address, and
        ``active_counts[r]`` is the number of active lanes.
    """
    idx = np.asarray(flat_indices, dtype=np.int64)
    if idx.ndim != 2:
        raise SimulationError("bank_conflict_profile expects a 2-D matrix")
    rows, width = idx.shape
    if rows == 0 or width == 0:
        empty = np.zeros(rows, dtype=np.int64)
        return empty, empty.astype(bool), empty
    if mask is None:
        mask = np.ones(idx.shape, dtype=bool)
    else:
        mask = np.asarray(mask, dtype=bool)
    active_counts = mask.sum(axis=1)
    addresses, uniq = rowwise_sorted_firsts(idx * itemsize, mask)
    unique_counts = uniq.sum(axis=1)
    broadcasts = unique_counts == 1
    degrees = (unique_counts > 0).astype(np.int64)
    # count distinct addresses per (row, bank); 8-byte elements occupy two
    # consecutive banks, hence the sub-word loop (mirrors the scalar path)
    words = addresses // bank_bytes
    row_ids = np.broadcast_to(np.arange(rows)[:, None], addresses.shape)
    words_per_element = max(1, itemsize // bank_bytes)
    for sub in range(words_per_element):
        bank_ids = (words + sub) % banks
        keys = (row_ids * banks + bank_ids)[uniq]
        counts = np.bincount(keys, minlength=rows * banks).reshape(rows, banks)
        degrees = np.maximum(degrees, counts.max(axis=1))
    return degrees, broadcasts, active_counts


class SharedMemory:
    """Shared-memory arena for one thread block."""

    def __init__(self, capacity_bytes: int, banks: int = 32, bank_bytes: int = 4) -> None:
        self.capacity_bytes = int(capacity_bytes)
        self.banks = banks
        self.bank_bytes = bank_bytes
        self._arrays: Dict[str, SharedArray] = {}
        self._used_bytes = 0
        #: cumulative conflict-weighted access count (for the profiler)
        self.access_count = 0.0
        self.broadcast_count = 0.0
        self.conflict_extra = 0.0
        self.bytes_read = 0.0
        self.bytes_written = 0.0

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated in this block's scratchpad."""
        return self._used_bytes

    def _check_allocate(self, name: str, shape: Tuple[int, ...],
                        precision: object):
        """Validate a new named allocation before materializing any array.

        Shared by the per-block and batched arenas so the capacity policy
        cannot drift between the two engines.  Returns
        ``(precision, bytes per block)``.
        """
        if name in self._arrays:
            raise SimulationError(f"shared array {name!r} already allocated")
        prec = resolve_precision(precision)
        per_block = int(np.prod(shape, dtype=np.int64)) * prec.itemsize
        if self._used_bytes + per_block > self.capacity_bytes:
            raise ResourceExhaustedError(
                f"shared memory exhausted: {self._used_bytes + per_block} bytes "
                f"requested, {self.capacity_bytes} available per block"
            )
        return prec, per_block

    def allocate(self, name: str, shape: Tuple[int, ...],
                 precision: object = "float32") -> SharedArray:
        """Allocate a named shared array (like ``__shared__ T name[...]``)."""
        prec, nbytes = self._check_allocate(name, shape, precision)
        array = np.zeros(shape, dtype=prec.numpy_dtype)
        shared = SharedArray(name=name, array=array, offset_bytes=self._used_bytes)
        self._arrays[name] = shared
        self._used_bytes += nbytes
        return shared

    def get(self, name: str) -> SharedArray:
        """Look up a previously allocated shared array."""
        try:
            return self._arrays[name]
        except KeyError as exc:
            raise SimulationError(f"shared array {name!r} was never allocated") from exc

    # -- access accounting -----------------------------------------------------
    def record_load(self, shared: SharedArray, flat_indices: np.ndarray) -> Tuple[int, bool]:
        """Account for one warp load; returns (conflict degree, is_broadcast)."""
        degree = bank_conflict_degree(flat_indices, shared.array.itemsize,
                                      self.banks, self.bank_bytes)
        broadcast = bool(flat_indices.size > 0 and np.unique(flat_indices).size == 1)
        if broadcast:
            self.broadcast_count += 1
        else:
            self.access_count += degree
            self.conflict_extra += max(0, degree - 1)
        self.bytes_read += float(flat_indices.size * shared.array.itemsize)
        return degree, broadcast

    def record_store(self, shared: SharedArray, flat_indices: np.ndarray) -> int:
        """Account for one warp store; returns the conflict degree."""
        degree = bank_conflict_degree(flat_indices, shared.array.itemsize,
                                      self.banks, self.bank_bytes)
        self.access_count += degree
        self.conflict_extra += max(0, degree - 1)
        self.bytes_written += float(flat_indices.size * shared.array.itemsize)
        return degree
