"""CUDA occupancy calculator for the simulated architectures.

Occupancy (resident warps per SM relative to the hardware maximum) controls
how much latency the SM can hide.  Register-cache kernels trade registers
per thread for fewer memory round-trips, so being able to compute the
occupancy impact of a register budget is an essential part of reproducing
the paper's design space (Sections 2 and 7.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import ConfigurationError
from .architecture import GPUArchitecture


#: tie-breaking priority of ``limiting_factor`` when several limits bind at
#: the same block count: resource limits first (registers, then the shared
#: memory carve-out), then the hardware slot limits (warp slots, thread
#: slots, block slots).  The order is part of the public contract — reports
#: and the tuner's explanations depend on it being deterministic.
LIMIT_PRIORITY: Tuple[str, ...] = (
    "registers", "shared_memory", "warps", "threads", "blocks")


@dataclass(frozen=True)
class OccupancyResult:
    """Resident blocks/warps per SM for one kernel configuration.

    ``active_warps_per_sm`` and ``active_threads_per_sm`` are always derived
    from ``active_blocks_per_sm`` (blocks are resident as a whole), so the
    triple is self-consistent by construction.
    """

    active_blocks_per_sm: int
    active_warps_per_sm: int
    active_threads_per_sm: int
    occupancy: float
    limiting_factor: str
    limits: Dict[str, int]

    @property
    def is_register_limited(self) -> bool:
        """True when registers are the binding constraint."""
        return self.limiting_factor == "registers"

    @property
    def is_shared_memory_limited(self) -> bool:
        """True when shared memory is the binding constraint."""
        return self.limiting_factor == "shared_memory"


def _round_up(value: int, granularity: int) -> int:
    return ((value + granularity - 1) // granularity) * granularity


def _check_granularities(architecture: GPUArchitecture) -> None:
    """Reject architectures with non-positive allocation granularities.

    A granularity of zero or less would silently skip the hardware's
    allocation rounding and overstate occupancy; a malformed architecture
    variant must fail loudly instead.
    """
    for name in ("warp_allocation_granularity",
                 "register_allocation_granularity",
                 "shared_allocation_granularity"):
        value = getattr(architecture, name)
        if value <= 0:
            raise ConfigurationError(
                f"architecture {architecture.name!r}: {name} must be a "
                f"positive integer, got {value!r}")


def validate_block_threads(architecture: GPUArchitecture, block_threads: int,
                           warp_multiple: bool = True) -> int:
    """Validate a launch's block size against the architecture limits.

    Raises :class:`~repro.errors.ConfigurationError` when the block size is
    not a positive integer, exceeds ``max_threads_per_block``, or (for the
    SSAM kernels, whose warps each own a whole tile) is not a multiple of
    the warp size.  Called at plan time so a bad ``block_threads`` fails
    with a clear message instead of deep inside the simulator.
    """
    if not isinstance(block_threads, (int,)) or isinstance(block_threads, bool):
        raise ConfigurationError(
            f"block size must be an integer, got {block_threads!r}")
    if block_threads <= 0:
        raise ConfigurationError(
            f"block size must be positive, got {block_threads}")
    if block_threads > architecture.max_threads_per_block:
        raise ConfigurationError(
            f"block of {block_threads} threads exceeds the architecture limit of "
            f"{architecture.max_threads_per_block}"
        )
    if warp_multiple and block_threads % architecture.warp_size != 0:
        raise ConfigurationError(
            f"block size {block_threads} is not a multiple of the warp size "
            f"{architecture.warp_size}")
    return block_threads


def compute_occupancy(architecture: GPUArchitecture, block_threads: int,
                      registers_per_thread: int,
                      shared_bytes_per_block: int) -> OccupancyResult:
    """Compute resident blocks/warps per SM for a kernel configuration.

    Follows the standard CUDA occupancy calculation: the number of resident
    blocks is the minimum over the limits imposed by warp slots, thread
    slots, block slots, the register file and the shared-memory carve-out.
    When several limits tie, ``limiting_factor`` reports the highest-priority
    one according to :data:`LIMIT_PRIORITY`.
    """
    _check_granularities(architecture)
    validate_block_threads(architecture, block_threads, warp_multiple=False)
    warp_size = architecture.warp_size
    warps_per_block = math.ceil(block_threads / warp_size)
    warps_per_block = _round_up(warps_per_block, architecture.warp_allocation_granularity)

    limits: Dict[str, int] = {}
    limits["blocks"] = architecture.max_blocks_per_sm
    limits["warps"] = architecture.max_warps_per_sm // warps_per_block
    limits["threads"] = architecture.max_threads_per_sm // block_threads

    if registers_per_thread > 0:
        regs_per_warp = _round_up(registers_per_thread * warp_size,
                                  architecture.register_allocation_granularity)
        regs_per_block = regs_per_warp * warps_per_block
        limits["registers"] = (
            architecture.registers_per_sm // regs_per_block if regs_per_block else 10**9
        )
    else:
        limits["registers"] = architecture.max_blocks_per_sm

    if shared_bytes_per_block > 0:
        smem = _round_up(shared_bytes_per_block, architecture.shared_allocation_granularity)
        if smem > architecture.shared_memory_per_block:
            raise ConfigurationError(
                f"block uses {smem} bytes of shared memory, per-block limit is "
                f"{architecture.shared_memory_per_block}"
            )
        limits["shared_memory"] = architecture.shared_memory_per_sm // smem
    else:
        limits["shared_memory"] = architecture.max_blocks_per_sm

    active_blocks = max(0, min(limits.values()))
    limiting_factor = min(
        limits, key=lambda key: (limits[key], LIMIT_PRIORITY.index(key)))
    # derive the whole triple from the resident block count: blocks are
    # resident as a unit, so warps and threads can never disagree with them
    # (``limits["warps"]``/``limits["threads"]`` already encode the per-SM
    # warp- and thread-slot caps, making further clamping redundant)
    active_warps = active_blocks * warps_per_block
    active_threads = active_blocks * block_threads
    occupancy = active_warps / architecture.max_warps_per_sm

    return OccupancyResult(
        active_blocks_per_sm=active_blocks,
        active_warps_per_sm=active_warps,
        active_threads_per_sm=active_threads,
        occupancy=occupancy,
        limiting_factor=limiting_factor,
        limits=dict(limits),
    )
