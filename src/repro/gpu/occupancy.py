"""CUDA occupancy calculator for the simulated architectures.

Occupancy (resident warps per SM relative to the hardware maximum) controls
how much latency the SM can hide.  Register-cache kernels trade registers
per thread for fewer memory round-trips, so being able to compute the
occupancy impact of a register budget is an essential part of reproducing
the paper's design space (Sections 2 and 7.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from ..errors import ConfigurationError
from .architecture import GPUArchitecture


@dataclass(frozen=True)
class OccupancyResult:
    """Resident blocks/warps per SM for one kernel configuration."""

    active_blocks_per_sm: int
    active_warps_per_sm: int
    active_threads_per_sm: int
    occupancy: float
    limiting_factor: str
    limits: Dict[str, int]

    @property
    def is_register_limited(self) -> bool:
        """True when registers are the binding constraint."""
        return self.limiting_factor == "registers"

    @property
    def is_shared_memory_limited(self) -> bool:
        """True when shared memory is the binding constraint."""
        return self.limiting_factor == "shared_memory"


def _round_up(value: int, granularity: int) -> int:
    return ((value + granularity - 1) // granularity) * granularity


def _check_granularities(architecture: GPUArchitecture) -> None:
    """Reject architectures with non-positive allocation granularities.

    A granularity of zero or less would silently skip the hardware's
    allocation rounding and overstate occupancy; a malformed architecture
    variant must fail loudly instead.
    """
    for name in ("warp_allocation_granularity",
                 "register_allocation_granularity",
                 "shared_allocation_granularity"):
        value = getattr(architecture, name)
        if value <= 0:
            raise ConfigurationError(
                f"architecture {architecture.name!r}: {name} must be a "
                f"positive integer, got {value!r}")


def compute_occupancy(architecture: GPUArchitecture, block_threads: int,
                      registers_per_thread: int,
                      shared_bytes_per_block: int) -> OccupancyResult:
    """Compute resident blocks/warps per SM for a kernel configuration.

    Follows the standard CUDA occupancy calculation: the number of resident
    blocks is the minimum over the limits imposed by warp slots, thread
    slots, block slots, the register file and the shared-memory carve-out.
    """
    _check_granularities(architecture)
    if block_threads <= 0:
        raise ConfigurationError("block size must be positive")
    if block_threads > architecture.max_threads_per_block:
        raise ConfigurationError(
            f"block of {block_threads} threads exceeds the architecture limit of "
            f"{architecture.max_threads_per_block}"
        )
    warp_size = architecture.warp_size
    warps_per_block = math.ceil(block_threads / warp_size)
    warps_per_block = _round_up(warps_per_block, architecture.warp_allocation_granularity)

    limits: Dict[str, int] = {}
    limits["blocks"] = architecture.max_blocks_per_sm
    limits["warps"] = architecture.max_warps_per_sm // warps_per_block
    limits["threads"] = architecture.max_threads_per_sm // block_threads

    if registers_per_thread > 0:
        regs_per_warp = _round_up(registers_per_thread * warp_size,
                                  architecture.register_allocation_granularity)
        regs_per_block = regs_per_warp * warps_per_block
        limits["registers"] = (
            architecture.registers_per_sm // regs_per_block if regs_per_block else 10**9
        )
    else:
        limits["registers"] = architecture.max_blocks_per_sm

    if shared_bytes_per_block > 0:
        smem = _round_up(shared_bytes_per_block, architecture.shared_allocation_granularity)
        if smem > architecture.shared_memory_per_block:
            raise ConfigurationError(
                f"block uses {smem} bytes of shared memory, per-block limit is "
                f"{architecture.shared_memory_per_block}"
            )
        limits["shared_memory"] = architecture.shared_memory_per_sm // smem
    else:
        limits["shared_memory"] = architecture.max_blocks_per_sm

    active_blocks = max(0, min(limits.values()))
    limiting_factor = min(limits, key=lambda key: limits[key])
    active_warps = active_blocks * warps_per_block
    active_warps = min(active_warps, architecture.max_warps_per_sm)
    active_threads = min(active_blocks * block_threads, architecture.max_threads_per_sm)
    occupancy = active_warps / architecture.max_warps_per_sm

    return OccupancyResult(
        active_blocks_per_sm=active_blocks,
        active_warps_per_sm=active_warps,
        active_threads_per_sm=active_threads,
        occupancy=occupancy,
        limiting_factor=limiting_factor,
        limits=dict(limits),
    )
