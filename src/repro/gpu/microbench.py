"""Micro-benchmarks that regenerate Table 2 of the paper.

The original work measures dependent-issue latencies with pointer-chase
style kernels (an adaptation of ``cudabmk``).  Here the same experiment is
expressed against the simulator: a :class:`DependentChain` issues ``n``
instructions where each consumes the previous result, so its cost is
``n x latency``; an :class:`IndependentStream` issues ``n`` independent
instructions, so its cost is ``n / throughput``.  Dividing the measured
cycles by ``n`` recovers the per-operation latency exactly as the real
micro-benchmark does on hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from .architecture import get_architecture
from .latency import INSTRUCTION_CLASSES
from .warp import Warp, shfl_up


@dataclass(frozen=True)
class ChainMeasurement:
    """Result of timing one instruction chain."""

    operation: str
    instructions: int
    cycles: float

    @property
    def cycles_per_instruction(self) -> float:
        """Measured cost of one operation in cycles/warp."""
        return self.cycles / self.instructions if self.instructions else 0.0


class DependentChain:
    """A chain of ``length`` instructions, each depending on the previous one."""

    def __init__(self, operation: str, length: int = 256) -> None:
        if operation not in INSTRUCTION_CLASSES:
            raise ConfigurationError(f"unknown operation {operation!r}")
        if length <= 0:
            raise ConfigurationError("chain length must be positive")
        self.operation = operation
        self.length = length

    def run(self, architecture: object) -> ChainMeasurement:
        """Execute the chain on one warp and report total cycles.

        The functional side really runs (on a 32-lane warp) so the machinery
        is exercised end to end; the cycle count follows the dependent-issue
        rule ``cycles = length x latency``.
        """
        arch = get_architecture(architecture)
        latency = arch.latencies.for_class(self.operation)
        warp = Warp(width=arch.warp_size)
        values = np.arange(arch.warp_size, dtype=np.float32)
        warp.set_register("acc", values)
        for _ in range(min(self.length, 64)):  # functional part, bounded for speed
            if self.operation == "shfl":
                values = shfl_up(values, 1, arch.warp_size)
            elif self.operation in ("fma", "add", "mul", "misc"):
                values = values * np.float32(1.000001) + np.float32(1.0)
            else:
                values = values + np.float32(1.0)
        warp.set_register("acc", values)
        cycles = float(self.length) * latency
        return ChainMeasurement(self.operation, self.length, cycles)


class IndependentStream:
    """``length`` mutually independent instructions (throughput-limited)."""

    def __init__(self, operation: str, length: int = 256) -> None:
        if length <= 0:
            raise ConfigurationError("stream length must be positive")
        self.operation = operation
        self.length = length

    def run(self, architecture: object, itemsize: int = 4) -> ChainMeasurement:
        """Cycles for the stream on one SM: ``length / throughput``."""
        arch = get_architecture(architecture)
        tput = arch.throughput
        if self.operation in ("fma", "add", "mul"):
            rate = tput.arithmetic(self.operation, itemsize)
        elif self.operation == "shfl":
            rate = tput.shfl
        elif self.operation in ("smem_load", "smem_store"):
            rate = tput.shared(itemsize)
        elif self.operation == "smem_broadcast":
            rate = tput.smem_broadcast
        else:
            rate = tput.l1
        cycles = self.length / rate
        return ChainMeasurement(self.operation, self.length, cycles)


#: the rows of Table 2 and the instruction class each one measures
TABLE2_OPERATIONS: Tuple[Tuple[str, str], ...] = (
    ("shfl_up_sync", "shfl"),
    ("add, sub, mad", "fma"),
    ("smem_read", "smem_load"),
)


def measure_latency(architecture: object, operation: str, chain_length: int = 512) -> float:
    """Measured dependent-issue latency of ``operation`` in cycles/warp."""
    chain = DependentChain(operation, chain_length)
    return chain.run(architecture).cycles_per_instruction


def run_table2(architectures: Sequence[object] = ("p100", "v100"),
               chain_length: int = 512) -> List[Dict[str, object]]:
    """Regenerate Table 2: one row per (GPU, operation) with measured latency."""
    rows: List[Dict[str, object]] = []
    for arch_name in architectures:
        arch = get_architecture(arch_name)
        for label, op in TABLE2_OPERATIONS:
            rows.append(
                {
                    "gpu": arch.name,
                    "operation": label,
                    "latency_cycles": measure_latency(arch, op, chain_length),
                }
            )
    return rows


def latency_throughput_gap(architecture: object, operation: str,
                           length: int = 512) -> float:
    """Ratio dependent-chain time / independent-stream time for one op.

    A large ratio means the operation pipelines well (the key property the
    SSAM model exploits: many independent partial sums hide the shuffle and
    FMA latencies).
    """
    dependent = DependentChain(operation, length).run(architecture)
    independent = IndependentStream(operation, length).run(architecture)
    if independent.cycles == 0:
        return float("inf")
    return dependent.cycles / independent.cycles
