"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration problems from simulation
problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the SSAM reproduction library."""


class ConfigurationError(ReproError):
    """A kernel/launch/architecture configuration is invalid.

    Raised, for example, when a block size is not a multiple of the warp
    size, when a register-cache plan would exceed the per-thread register
    budget, or when a filter does not fit the requested plan.
    """


class ResourceExhaustedError(ConfigurationError):
    """A plan requires more of a hardware resource than the architecture has.

    Examples: more registers per thread than ``max_registers_per_thread``,
    more shared memory per block than ``shared_memory_per_block``.
    """


class LaunchError(ReproError):
    """A kernel launch failed (bad grid, missing buffers, runtime fault)."""


class SimulationError(ReproError):
    """The functional simulation detected an inconsistency.

    This signals a bug in a kernel (e.g. out-of-bounds shared-memory access,
    shuffle on an inactive lane) rather than a user configuration problem.
    """


class SpecificationError(ConfigurationError):
    """A stencil/convolution specification is malformed."""


class DependencyError(ReproError):
    """The systolic dependency graph D is invalid (cyclic, non-warp-local...)."""
