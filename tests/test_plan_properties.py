"""Property-based tests for the plan arithmetic (hypothesis).

Randomised register-cache plans must never exceed the architecture register
budget, and the overlapped-blocking halo/coverage accounting must match
brute-force counts over explicit tile enumerations.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.blocking import OverlappedBlocking
from repro.core.register_cache import (
    RegisterCachePlan,
    choose_plan,
    max_outputs_per_thread,
)
from repro.errors import ResourceExhaustedError
from repro.gpu.architecture import architecture_names, get_architecture

ARCHITECTURES = st.sampled_from(architecture_names())
PRECISIONS = st.sampled_from(["float32", "float64"])

COMMON = settings(max_examples=60, deadline=None, derandomize=True)


# ------------------------------------------------------------- register budget

@COMMON
@given(filter_height=st.integers(1, 24), requested=st.integers(1, 64),
       architecture=ARCHITECTURES, precision=PRECISIONS)
def test_choose_plan_never_exceeds_the_register_budget(
        filter_height, requested, architecture, precision):
    arch = get_architecture(architecture)
    plan = choose_plan(filter_height, architecture, precision,
                       requested_outputs=requested)
    assert plan.registers_per_thread <= arch.max_registers_per_thread
    assert not plan.allocation(architecture).spills
    assert 1 <= plan.outputs_per_thread <= max(1, requested)
    # the chosen P is exactly the requested depth clamped to the spill limit
    limit = max_outputs_per_thread(filter_height, architecture, precision)
    assert plan.outputs_per_thread == max(1, min(requested, limit))


@COMMON
@given(filter_height=st.integers(1, 24), architecture=ARCHITECTURES,
       precision=PRECISIONS)
def test_max_outputs_limit_itself_fits(filter_height, architecture, precision):
    limit = max_outputs_per_thread(filter_height, architecture, precision)
    plan = RegisterCachePlan(filter_height=filter_height,
                             outputs_per_thread=limit, precision=precision)
    assert plan.fits(architecture)
    plan.validate(architecture)  # must not raise


@COMMON
@given(filter_height=st.integers(1, 16), outputs=st.integers(1, 128),
       architecture=ARCHITECTURES, precision=PRECISIONS)
def test_validate_agrees_with_fits(filter_height, outputs, architecture,
                                   precision):
    plan = RegisterCachePlan(filter_height=filter_height,
                             outputs_per_thread=outputs, precision=precision)
    if plan.fits(architecture):
        plan.validate(architecture)
    else:
        with pytest.raises(ResourceExhaustedError):
            plan.validate(architecture)


# ------------------------------------------------------------- halo accounting

@COMMON
@given(m=st.integers(1, 16), n=st.integers(1, 12), p=st.integers(1, 8))
def test_halo_ratio_matches_brute_force_count(m, n, p):
    """HR_rc (Section 5.3) against an explicit per-element tally.

    With the paper's one-sided overlap convention, an element of the
    ``S x C`` warp tile is halo iff it lies within the trailing ``M``
    columns or the trailing ``N`` rows shared with the neighbouring tiles;
    the closed form is (S*C - (S-M)*(C-N)) / (S*C).
    """
    blocking = OverlappedBlocking(filter_width=m, filter_height=n,
                                  outputs_per_thread=p)
    s, c = blocking.warp_size, blocking.cache_values
    halo = sum(1 for x in range(s) for y in range(c)
               if x >= s - m or y >= c - n)
    assert blocking.halo_ratio == pytest.approx(halo / (s * c))
    # the Section 5.3 bound must hold strictly
    assert blocking.halo_ratio < blocking.halo_ratio_upper_bound


@COMMON
@given(m=st.integers(1, 8), n=st.integers(1, 6), p=st.integers(1, 5),
       warps=st.integers(1, 4), width=st.integers(1, 70),
       height=st.integers(1, 40))
def test_grid_covers_every_output_exactly_once(m, n, p, warps, width, height):
    """Brute force: the warps' valid-output tiles partition the domain."""
    blocking = OverlappedBlocking(filter_width=m, filter_height=n,
                                  outputs_per_thread=p,
                                  block_threads=32 * warps)
    grid_x, grid_y, _ = blocking.grid_dim(width, height)
    cover = np.zeros((height, width), dtype=np.int64)
    for bx in range(grid_x):
        for warp in range(blocking.warps_per_block):
            x0 = (bx * blocking.warps_per_block + warp) * blocking.valid_outputs_x
            for by in range(grid_y):
                y0 = by * blocking.valid_outputs_y
                cover[y0:y0 + blocking.valid_outputs_y,
                      x0:x0 + blocking.valid_outputs_x] += 1
    assert (cover == 1).all()
    # ... and the grid is minimal: dropping the last column/row of blocks
    # leaves outputs uncovered
    assert (grid_x - 1) * blocking.warps_per_block * blocking.valid_outputs_x \
        < width
    assert (grid_y - 1) * blocking.valid_outputs_y < height


@COMMON
@given(m=st.integers(1, 8), n=st.integers(1, 6), p=st.integers(1, 5),
       warps=st.integers(1, 4), width=st.integers(1, 70),
       height=st.integers(1, 40), precision=PRECISIONS)
def test_loaded_elements_matches_per_warp_enumeration(m, n, p, warps, width,
                                                      height, precision):
    """Traffic accounting against an explicit per-warp tally."""
    blocking = OverlappedBlocking(filter_width=m, filter_height=n,
                                  outputs_per_thread=p,
                                  block_threads=32 * warps)
    grid_x, grid_y, _ = blocking.grid_dim(width, height)
    loaded = sum(blocking.warp_size * blocking.cache_values
                 for _ in range(grid_x * grid_y)
                 for _ in range(blocking.warps_per_block))
    assert blocking.loaded_elements(width, height) == loaded
    summary = blocking.traffic_summary(width, height, precision)
    itemsize = 8 if precision == "float64" else 4
    assert summary["read_bytes"] == loaded * itemsize
    assert summary["read_amplification"] == \
        pytest.approx(loaded / (width * height))
    assert summary["halo_ratio"] == blocking.halo_ratio
