"""Property-based tests for the plan arithmetic (hypothesis).

Randomised register-cache plans must never exceed the architecture register
budget, and the overlapped-blocking halo/coverage accounting must match
brute-force counts over explicit tile enumerations.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.blocking import OverlappedBlocking
from repro.core.register_cache import (
    RegisterCachePlan,
    choose_plan,
    max_outputs_per_thread,
)
from repro.errors import ResourceExhaustedError
from repro.gpu.architecture import architecture_names, get_architecture

ARCHITECTURES = st.sampled_from(architecture_names())
PRECISIONS = st.sampled_from(["float32", "float64"])

COMMON = settings(max_examples=60, deadline=None, derandomize=True)


# ------------------------------------------------------------- register budget

@COMMON
@given(filter_height=st.integers(1, 24), requested=st.integers(1, 64),
       architecture=ARCHITECTURES, precision=PRECISIONS)
def test_choose_plan_never_exceeds_the_register_budget(
        filter_height, requested, architecture, precision):
    arch = get_architecture(architecture)
    plan = choose_plan(filter_height, architecture, precision,
                       requested_outputs=requested)
    assert plan.registers_per_thread <= arch.max_registers_per_thread
    assert not plan.allocation(architecture).spills
    assert 1 <= plan.outputs_per_thread <= max(1, requested)
    # the chosen P is exactly the requested depth clamped to the spill limit
    limit = max_outputs_per_thread(filter_height, architecture, precision)
    assert plan.outputs_per_thread == max(1, min(requested, limit))


@COMMON
@given(filter_height=st.integers(1, 24), architecture=ARCHITECTURES,
       precision=PRECISIONS)
def test_max_outputs_limit_itself_fits(filter_height, architecture, precision):
    limit = max_outputs_per_thread(filter_height, architecture, precision)
    plan = RegisterCachePlan(filter_height=filter_height,
                             outputs_per_thread=limit, precision=precision)
    assert plan.fits(architecture)
    plan.validate(architecture)  # must not raise


@COMMON
@given(filter_height=st.integers(1, 16), outputs=st.integers(1, 128),
       architecture=ARCHITECTURES, precision=PRECISIONS)
def test_validate_agrees_with_fits(filter_height, outputs, architecture,
                                   precision):
    plan = RegisterCachePlan(filter_height=filter_height,
                             outputs_per_thread=outputs, precision=precision)
    if plan.fits(architecture):
        plan.validate(architecture)
    else:
        with pytest.raises(ResourceExhaustedError):
            plan.validate(architecture)


# --------------------------------------------------- occupancy (new parts)

MODERN = ("a100", "h100")


@pytest.mark.parametrize("architecture, block_threads, registers, shared, triple, factor", [
    # pinned triples for the post-paper parts: identical register files give
    # identical register-bound results, while the larger Hopper scratchpad
    # admits one more block when shared memory binds
    ("a100", 128, 64, 0, (8, 32, 1024), "registers"),
    ("h100", 128, 64, 0, (8, 32, 1024), "registers"),
    ("a100", 256, 255, 0, (1, 8, 256), "registers"),
    ("a100", 128, 32, 48 * 1024, (3, 12, 384), "shared_memory"),
    ("h100", 128, 32, 48 * 1024, (4, 16, 512), "shared_memory"),
    ("h100", 1024, 128, 16 * 1024, (0, 0, 0), "registers"),
])
def test_modern_occupancy_triples_are_pinned(architecture, block_threads,
                                             registers, shared, triple, factor):
    from repro.gpu.occupancy import compute_occupancy

    result = compute_occupancy(get_architecture(architecture), block_threads,
                               registers, shared)
    assert (result.active_blocks_per_sm, result.active_warps_per_sm,
            result.active_threads_per_sm) == triple
    assert result.limiting_factor == factor


@COMMON
@given(architecture=st.sampled_from(MODERN),
       warps=st.integers(1, 32), registers=st.integers(0, 255),
       shared_kib=st.integers(0, 160))
def test_modern_occupancy_matches_brute_force(architecture, warps, registers,
                                              shared_kib):
    """The calculator's triple against an explicit feasibility scan.

    The brute force re-applies the allocation-granularity rounding and then
    finds the largest resident block count satisfying every per-SM limit by
    linear search — independently of the calculator's min-over-limits form.
    """
    from repro.gpu.occupancy import _round_up, compute_occupancy

    arch = get_architecture(architecture)
    block_threads = 32 * warps
    shared = shared_kib * 1024
    result = compute_occupancy(arch, block_threads, registers, shared)

    warps_per_block = _round_up(warps, arch.warp_allocation_granularity)
    regs_per_block = warps_per_block * _round_up(
        registers * arch.warp_size, arch.register_allocation_granularity)
    smem_per_block = _round_up(shared, arch.shared_allocation_granularity)
    best = 0
    for blocks in range(1, arch.max_blocks_per_sm + 1):
        if blocks * warps_per_block > arch.max_warps_per_sm:
            break
        if blocks * block_threads > arch.max_threads_per_sm:
            break
        if registers > 0 and blocks * regs_per_block > arch.registers_per_sm:
            break
        if shared > 0 and blocks * smem_per_block > arch.shared_memory_per_sm:
            break
        best = blocks
    assert result.active_blocks_per_sm == best
    assert result.active_warps_per_sm == best * warps_per_block
    assert result.active_threads_per_sm == best * block_threads
    assert result.occupancy == pytest.approx(
        best * warps_per_block / arch.max_warps_per_sm)


@COMMON
@given(architecture=st.sampled_from(MODERN),
       filter_height=st.integers(1, 24), requested=st.integers(1, 96),
       precision=PRECISIONS)
def test_modern_plan_clamping_matches_brute_force(architecture, filter_height,
                                                  requested, precision):
    """choose_plan's clamp on the new parts against a spill-free scan."""
    arch = get_architecture(architecture)
    plan = choose_plan(filter_height, architecture, precision,
                       requested_outputs=requested)
    assert plan.registers_per_thread <= arch.max_registers_per_thread
    assert not plan.allocation(architecture).spills
    brute_limit = 0
    for p in range(1, requested + 1):
        candidate = RegisterCachePlan(filter_height=filter_height,
                                      outputs_per_thread=p,
                                      precision=precision)
        if not candidate.fits(architecture):
            break
        brute_limit = p
    assert plan.outputs_per_thread == max(1, brute_limit)


# ------------------------------------------------------------- halo accounting

@COMMON
@given(m=st.integers(1, 16), n=st.integers(1, 12), p=st.integers(1, 8))
def test_halo_ratio_matches_brute_force_count(m, n, p):
    """HR_rc (Section 5.3) against an explicit per-element tally.

    With the paper's one-sided overlap convention, an element of the
    ``S x C`` warp tile is halo iff it lies within the trailing ``M``
    columns or the trailing ``N`` rows shared with the neighbouring tiles;
    the closed form is (S*C - (S-M)*(C-N)) / (S*C).
    """
    blocking = OverlappedBlocking(filter_width=m, filter_height=n,
                                  outputs_per_thread=p)
    s, c = blocking.warp_size, blocking.cache_values
    halo = sum(1 for x in range(s) for y in range(c)
               if x >= s - m or y >= c - n)
    assert blocking.halo_ratio == pytest.approx(halo / (s * c))
    # the Section 5.3 bound must hold strictly
    assert blocking.halo_ratio < blocking.halo_ratio_upper_bound


@COMMON
@given(m=st.integers(1, 8), n=st.integers(1, 6), p=st.integers(1, 5),
       warps=st.integers(1, 4), width=st.integers(1, 70),
       height=st.integers(1, 40))
def test_grid_covers_every_output_exactly_once(m, n, p, warps, width, height):
    """Brute force: the warps' valid-output tiles partition the domain."""
    blocking = OverlappedBlocking(filter_width=m, filter_height=n,
                                  outputs_per_thread=p,
                                  block_threads=32 * warps)
    grid_x, grid_y, _ = blocking.grid_dim(width, height)
    cover = np.zeros((height, width), dtype=np.int64)
    for bx in range(grid_x):
        for warp in range(blocking.warps_per_block):
            x0 = (bx * blocking.warps_per_block + warp) * blocking.valid_outputs_x
            for by in range(grid_y):
                y0 = by * blocking.valid_outputs_y
                cover[y0:y0 + blocking.valid_outputs_y,
                      x0:x0 + blocking.valid_outputs_x] += 1
    assert (cover == 1).all()
    # ... and the grid is minimal: dropping the last column/row of blocks
    # leaves outputs uncovered
    assert (grid_x - 1) * blocking.warps_per_block * blocking.valid_outputs_x \
        < width
    assert (grid_y - 1) * blocking.valid_outputs_y < height


@COMMON
@given(m=st.integers(1, 8), n=st.integers(1, 6), p=st.integers(1, 5),
       warps=st.integers(1, 4), width=st.integers(1, 70),
       height=st.integers(1, 40), precision=PRECISIONS)
def test_loaded_elements_matches_per_warp_enumeration(m, n, p, warps, width,
                                                      height, precision):
    """Traffic accounting against an explicit per-warp tally."""
    blocking = OverlappedBlocking(filter_width=m, filter_height=n,
                                  outputs_per_thread=p,
                                  block_threads=32 * warps)
    grid_x, grid_y, _ = blocking.grid_dim(width, height)
    loaded = sum(blocking.warp_size * blocking.cache_values
                 for _ in range(grid_x * grid_y)
                 for _ in range(blocking.warps_per_block))
    assert blocking.loaded_elements(width, height) == loaded
    summary = blocking.traffic_summary(width, height, precision)
    itemsize = 8 if precision == "float64" else 4
    assert summary["read_bytes"] == loaded * itemsize
    assert summary["read_amplification"] == \
        pytest.approx(loaded / (width * height))
    assert summary["halo_ratio"] == blocking.halo_ratio


# ------------------------------------------------------------- plan memoisation

def test_clamped_request_returns_the_cached_plan_object():
    """The plan cache keys on the *resolved* identity: a request that clamps
    to the same P as a smaller request must return the identical object."""
    from repro.convolution.spec import ConvolutionSpec
    from repro.core.plan import _PLAN_CACHE, plan_convolution

    spec = ConvolutionSpec.gaussian(9)
    limit = max_outputs_per_thread(9, "p100", "float64")
    resolved = plan_convolution(spec, "p100", "float64", outputs_per_thread=limit)
    clamped = plan_convolution(spec, "p100", "float64", outputs_per_thread=limit + 40)
    assert clamped is resolved
    assert clamped.outputs_per_thread == limit
    # both requests occupy exactly one cache entry for this configuration
    matching = [key for key in _PLAN_CACHE
                if key[0] == "conv2d" and key[1] == spec.fingerprint()
                and key[4] == limit]
    assert len(matching) == 1


def test_plan_cache_evicts_lru_not_everything(monkeypatch):
    """Filling the cache evicts the oldest entries one by one (LRU), not the
    whole table at once."""
    import repro.core.plan as plan_mod
    from repro.convolution.spec import ConvolutionSpec

    monkeypatch.setattr(plan_mod, "_PLAN_CACHE_MAX", 4)
    plan_mod._PLAN_CACHE.clear()
    specs = [ConvolutionSpec.gaussian(size) for size in (3, 5, 7, 9)]
    plans = [plan_mod.plan_convolution(spec, "p100", "float32") for spec in specs]
    assert len(plan_mod._PLAN_CACHE) == 4
    # touch the oldest so it becomes most recently used
    assert plan_mod.plan_convolution(specs[0], "p100", "float32") is plans[0]
    # a fifth insert evicts exactly one entry — the least recently used
    plan_mod.plan_convolution(ConvolutionSpec.gaussian(11), "p100", "float32")
    assert len(plan_mod._PLAN_CACHE) == 4
    assert plan_mod.plan_convolution(specs[0], "p100", "float32") is plans[0]
    # specs[1] was evicted: a rebuild yields an equivalent but distinct object
    rebuilt = plan_mod.plan_convolution(specs[1], "p100", "float32")
    assert rebuilt is not plans[1]
    assert rebuilt.fingerprint() == plans[1].fingerprint()


# ------------------------------------------------------- block-size validation

@pytest.mark.parametrize("bad_block", [0, -128, 100, 2048])
def test_plans_reject_invalid_block_sizes(bad_block):
    """Bad block sizes fail at plan time with a ConfigurationError, not deep
    inside the simulator."""
    from repro.convolution.spec import ConvolutionSpec
    from repro.core.plan import plan_convolution, plan_stencil
    from repro.errors import ConfigurationError
    from repro.stencils.catalog import get_stencil

    with pytest.raises(ConfigurationError):
        plan_convolution(ConvolutionSpec.gaussian(3), "p100", "float32",
                         block_threads=bad_block)
    with pytest.raises(ConfigurationError):
        plan_stencil(get_stencil("2d5pt"), "v100", "float32",
                     block_threads=bad_block)


@pytest.mark.parametrize("bad_block", [0, 100, 2048])
def test_kernel_entry_points_reject_invalid_block_sizes(bad_block):
    from repro.errors import ConfigurationError
    from repro.kernels import ssam_convolve1d, ssam_scan, ssam_stencil3d
    from repro.stencils.catalog import get_stencil

    data = np.arange(64, dtype=np.float64)
    with pytest.raises(ConfigurationError):
        ssam_scan(data, block_threads=bad_block)
    with pytest.raises(ConfigurationError):
        ssam_convolve1d(data, np.ones(3) / 3.0, block_threads=bad_block)
    with pytest.raises(ConfigurationError):
        ssam_stencil3d(np.zeros((5, 5, 5)), get_stencil("3d7pt"),
                       block_threads=bad_block)
