"""Tests for the SSAM core: register cache, blocking, J=(O,D,X,Y), Section 5 model."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.convolution.spec import ConvolutionSpec
from repro.core.blocking import OverlappedBlocking, SharedMemoryBlocking
from repro.core.dependency import (
    compare_dependencies,
    convolution_dependency,
    critical_path_cycles,
    horizontal_transfer_fraction,
    scan_dependency,
    shuffle_count,
    shuffle_schedule,
    stencil_dependency,
    validate_dependency,
)
from repro.core.model import Operation, RegisterBinding, SystolicProgram
from repro.core.performance_model import (
    average_advantage,
    compare_latencies,
    halo_ratio,
    halo_ratio_upper_bound,
    latency_advantage,
    predicted_speedup,
    register_cache_latency,
    shared_memory_latency,
)
from repro.core.plan import plan_convolution, plan_stencil
from repro.core.register_cache import RegisterCachePlan, choose_plan, max_outputs_per_thread
from repro.errors import ConfigurationError, DependencyError, ResourceExhaustedError
from repro.stencils.catalog import get_stencil


# --- register cache (Equation 3) -------------------------------------------------

@pytest.mark.parametrize("n, p, c", [(3, 4, 6), (5, 4, 8), (1, 1, 1), (20, 4, 23)])
def test_cache_values_equation3(n, p, c):
    assert RegisterCachePlan(filter_height=n, outputs_per_thread=p).cache_values == c


def test_register_plan_double_precision_uses_twice_the_registers():
    single = RegisterCachePlan(5, 4, precision="float32")
    double = RegisterCachePlan(5, 4, precision="float64")
    assert double.registers_per_thread - 18 == 2 * (single.registers_per_thread - 18)


def test_register_plan_validation_and_spill():
    ok = RegisterCachePlan(5, 4).validate("p100")
    assert ok.fits("p100")
    huge = RegisterCachePlan(200, 40, precision="float64")
    assert not huge.fits("p100")
    with pytest.raises(ResourceExhaustedError):
        huge.validate("p100")


def test_register_plan_rejects_bad_arguments():
    with pytest.raises(ConfigurationError):
        RegisterCachePlan(0, 4)
    with pytest.raises(ConfigurationError):
        RegisterCachePlan(3, 0)


def test_choose_plan_prefers_paper_default_p4():
    plan = choose_plan(5, "p100", "float32", requested_outputs=4)
    assert plan.outputs_per_thread == 4
    assert plan.fits("p100")


def test_choose_plan_shrinks_p_when_registers_tight():
    plan = choose_plan(100, "p100", "float64", requested_outputs=64)
    assert plan.outputs_per_thread < 64
    assert plan.fits("p100")


def test_max_outputs_per_thread_monotone_in_filter_height():
    assert max_outputs_per_thread(3, "p100") >= max_outputs_per_thread(21, "p100")


def test_warp_cache_bytes():
    plan = RegisterCachePlan(5, 4)
    assert plan.warp_cache_bytes == 8 * 32 * 4
    assert plan.reuse_factor == pytest.approx(4 * 5 / 8)


# --- overlapped blocking (Sections 4.5/4.7/5.3) ------------------------------------

def test_valid_outputs_per_warp():
    blocking = OverlappedBlocking(filter_width=5, filter_height=5, outputs_per_thread=4)
    assert blocking.valid_outputs_x == 28
    assert blocking.valid_outputs_per_warp == 112
    assert blocking.cached_elements_per_warp == 32 * 8


def test_grid_dimensions_match_section47():
    blocking = OverlappedBlocking(filter_width=5, filter_height=5, outputs_per_thread=4,
                                  block_threads=128)
    # GridDim.x = ceil(W / (WarpCount*(WarpSize-M+1))), GridDim.y = ceil(H/P)
    assert blocking.grid_dim(8192, 8192) == (math_ceil(8192, 4 * 28), math_ceil(8192, 4), 1)


def math_ceil(a, b):
    return -(-a // b)


def test_halo_ratio_formula_and_bound():
    blocking = OverlappedBlocking(filter_width=5, filter_height=5, outputs_per_thread=4)
    s, c, m, n = 32, 8, 5, 5
    expected = (s * c - (s - m) * (c - n)) / (s * c)
    assert blocking.halo_ratio == pytest.approx(expected)
    assert blocking.halo_ratio < blocking.halo_ratio_upper_bound


@settings(max_examples=60, deadline=None)
@given(m=st.integers(min_value=1, max_value=20), n=st.integers(min_value=1, max_value=20),
       p=st.integers(min_value=1, max_value=16))
def test_halo_ratio_is_a_valid_fraction(m, n, p):
    blocking = OverlappedBlocking(filter_width=m, filter_height=n, outputs_per_thread=p)
    assert 0.0 <= blocking.halo_ratio <= 1.0
    assert blocking.load_redundancy >= 1.0
    assert blocking.compute_redundancy_x >= 1.0


def test_blocking_rejects_filters_wider_than_warp():
    with pytest.raises(ConfigurationError):
        OverlappedBlocking(filter_width=33, filter_height=3, outputs_per_thread=4)


def test_blocking_traffic_summary_increases_with_halo():
    small = OverlappedBlocking(3, 3, 4).traffic_summary(1024, 1024)
    large = OverlappedBlocking(15, 15, 4).traffic_summary(1024, 1024)
    assert large["read_amplification"] > small["read_amplification"]
    assert small["write_bytes"] == 1024 * 1024 * 4


def test_shared_memory_blocking_halo_smaller_than_register_halo():
    register = OverlappedBlocking(5, 5, 4)
    shared = SharedMemoryBlocking(tile_width=32, tile_height=32, halo_x=4, halo_y=4)
    assert shared.halo_ratio < register.halo_ratio  # HR_smc << HR_rc (Section 5.3)
    assert shared.shared_bytes("float32") == 36 * 36 * 4


# --- dependency graphs ---------------------------------------------------------------

def test_convolution_dependency_structure():
    graph = convolution_dependency(5)
    validate_dependency(graph)
    assert shuffle_schedule(graph) == [1, 1, 1, 1]
    assert shuffle_count(graph) == 4


def test_stencil_dependency_deltas():
    graph = stencil_dependency([-2, 0, 1])
    assert shuffle_schedule(graph) == [2, 1]


def test_scan_dependency_is_kogge_stone():
    graph = scan_dependency(32)
    assert shuffle_schedule(graph) == [1, 2, 4, 8, 16]
    assert nx.is_directed_acyclic_graph(graph)


def test_dependency_validation_errors():
    with pytest.raises(DependencyError):
        stencil_dependency([1, 0])           # unsorted
    with pytest.raises(DependencyError):
        stencil_dependency([0, 0])           # duplicates
    with pytest.raises(DependencyError):
        convolution_dependency(40)           # wider than a warp
    bad = convolution_dependency(3)
    bad.add_edge((0, 0), (5, 1), kind="shuffle", delta=5)  # second delta in one stage
    with pytest.raises(DependencyError):
        validate_dependency(bad)


def test_critical_path_grows_with_filter_width():
    short = critical_path_cycles(convolution_dependency(3, mads_per_stage=3), "p100")
    long = critical_path_cycles(convolution_dependency(9, mads_per_stage=9), "p100")
    assert long > short


def test_compare_dependencies_prefers_fewer_shuffles():
    ranked = compare_dependencies({
        "narrow": convolution_dependency(3),
        "wide": convolution_dependency(11),
    }, "p100")
    assert ranked[0][0] == "narrow"
    assert horizontal_transfer_fraction(convolution_dependency(3)) == 1.0


# --- J = (O, D, X, Y) programs ----------------------------------------------------------

def test_program_from_convolution():
    spec = ConvolutionSpec.gaussian(5)
    plan = choose_plan(5, "p100")
    program = SystolicProgram.from_convolution(spec, plan)
    assert program.stage_count == 5
    assert program.shuffles_per_pass == 4
    assert program.input_values_per_thread == plan.cache_values
    assert program.output_values_per_thread == plan.outputs_per_thread
    assert program.critical_path_cycles("p100") > 0
    assert "stages" in program.describe()


def test_program_from_stencil_matches_columns():
    spec = get_stencil("2d5pt")
    plan = choose_plan(spec.footprint_height, "v100")
    program = SystolicProgram.from_stencil(spec, plan)
    assert program.stage_count == 3              # West | North,Current,South | East
    assert program.shuffles_per_pass == 2        # exactly the two shuffles of Listing 2
    assert program.shuffle_deltas == [1, 1]


def test_program_kogge_stone_scan():
    program = SystolicProgram.kogge_stone_scan()
    assert program.stage_count == 6
    assert program.shuffles_per_pass == 5


def test_program_validation_errors():
    with pytest.raises(Exception):
        SystolicProgram(name="bad", operations=(), dependency=convolution_dependency(3),
                        inputs=(RegisterBinding("x", 1, "input"),),
                        outputs=(RegisterBinding("y", 1, "output"),))
    with pytest.raises(Exception):
        RegisterBinding("x", 1, "inout")
    with pytest.raises(Exception):
        Operation("neg", count_per_stage=-1)


# --- Section 5 performance model -----------------------------------------------------------

@pytest.mark.parametrize("arch", ["p100", "v100"])
@pytest.mark.parametrize("m", range(2, 21, 3))
@pytest.mark.parametrize("n", range(2, 21, 3))
def test_equation5_advantage_positive(arch, m, n):
    assert latency_advantage(arch, m, n) > 0


@pytest.mark.parametrize("arch", ["p100", "v100"])
def test_latency_comparison_consistency(arch):
    comparison = compare_latencies(arch, 5, 5)
    assert comparison.shared_memory_cycles == pytest.approx(shared_memory_latency(arch, 5, 5))
    assert comparison.register_cache_cycles == pytest.approx(register_cache_latency(arch, 5, 5))
    assert comparison.advantage_cycles == pytest.approx(latency_advantage(arch, 5, 5))
    assert 1.0 < comparison.speedup < 3.0


def test_halo_ratio_matches_blocking_module():
    assert halo_ratio(5, 5, 4) == pytest.approx(OverlappedBlocking(5, 5, 4, 32).halo_ratio)
    assert halo_ratio(5, 5, 4) < halo_ratio_upper_bound(5, 5, 4)


@pytest.mark.parametrize("arch", ["p100", "v100"])
def test_average_advantage_grows_with_filter_size(arch):
    values = [average_advantage(arch, size, size, 4) for size in range(2, 21)]
    assert all(b > a for a, b in zip(values, values[1:]))
    assert all(value > 0 for value in values[3:])


def test_predicted_speedup_greater_than_one():
    assert predicted_speedup("p100", 7, 7) > 1.0


# --- plans -------------------------------------------------------------------------------

def test_plan_convolution_paper_defaults():
    plan = plan_convolution(ConvolutionSpec.gaussian(5), "p100")
    described = plan.describe()
    assert described["P"] == 4 and described["block_threads"] == 128 and described["C"] == 8
    config = plan.launch_config(8192, 8192)
    assert config.grid_dim == (-(-8192 // (4 * 28)), 2048, 1)
    assert plan.shared_bytes_per_block == 25 * 4


def test_plan_stencil_no_shared_memory():
    plan = plan_stencil(get_stencil("2d9pt"), "v100")
    assert plan.shared_bytes_per_block == 0
    assert plan.occupancy().occupancy > 0.5
