"""Tests for global-memory traffic accounting and shared-memory bank conflicts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ResourceExhaustedError, SimulationError
from repro.gpu.memory import (
    BlockTrafficTracker,
    DeviceBuffer,
    GlobalMemory,
    coalesced_transactions,
    linear_index_2d,
    linear_index_3d,
)
from repro.gpu.shared_memory import SharedMemory, bank_conflict_degree


# --- coalescing -----------------------------------------------------------

def test_contiguous_float32_access_is_one_transaction():
    indices = np.arange(32)
    assert coalesced_transactions(indices, 4) == 1


def test_contiguous_float64_access_is_two_transactions():
    indices = np.arange(32)
    assert coalesced_transactions(indices, 8) == 2


def test_strided_access_inflates_transactions():
    indices = np.arange(32) * 32  # one element per cache line
    assert coalesced_transactions(indices, 4) == 32


def test_broadcast_access_is_one_transaction():
    assert coalesced_transactions(np.zeros(32, dtype=np.int64), 4) == 1


def test_empty_access_has_no_transactions():
    assert coalesced_transactions(np.array([], dtype=np.int64), 4) == 0


@settings(max_examples=40, deadline=None)
@given(start=st.integers(min_value=0, max_value=10_000))
def test_aligned_warp_load_never_exceeds_two_sectors(start):
    indices = np.arange(start, start + 32)
    assert 1 <= coalesced_transactions(indices, 4) <= 2


# --- global memory ---------------------------------------------------------

def test_global_memory_allocation_and_capacity():
    memory = GlobalMemory(capacity_bytes=1024)
    buf = memory.allocate((16,), "float32", fill=2.0)
    assert buf.nbytes == 64
    assert np.all(buf.to_host() == 2.0)
    with pytest.raises(Exception):
        memory.allocate((1024,), "float64")


def test_to_device_copies_data():
    memory = GlobalMemory()
    host = np.arange(10.0)
    buf = memory.to_device(host)
    host[0] = 99.0
    assert buf.to_host()[0] == 0.0
    memory.free(buf)


def test_block_traffic_tracker_unique_lines():
    buf = DeviceBuffer(array=np.zeros(1024, dtype=np.float32))
    tracker = BlockTrafficTracker()
    tracker.record_read(buf, np.arange(32))          # one 128 B line
    tracker.record_read(buf, np.arange(32))          # same line again: free
    tracker.record_read(buf, np.arange(32, 64))      # a second line
    assert tracker.finalize() == 256.0


def test_cached_buffers_generate_no_dram_traffic():
    buf = DeviceBuffer(array=np.zeros(1024, dtype=np.float32), cached=True)
    tracker = BlockTrafficTracker()
    tracker.record_read(buf, np.arange(64))
    assert tracker.finalize() == 0.0


def test_linear_index_helpers():
    assert linear_index_2d(np.array([2]), np.array([3]), width=10)[0] == 23
    assert linear_index_3d(np.array([1]), np.array([2]), np.array([3]), height=5, width=10)[0] == 73


# --- shared memory ----------------------------------------------------------

def test_bank_conflict_free_for_contiguous_access():
    assert bank_conflict_degree(np.arange(32), 4) == 1


def test_bank_conflict_degree_for_strided_access():
    # stride 32 floats: every lane hits bank 0 -> 32-way conflict
    assert bank_conflict_degree(np.arange(32) * 32, 4) == 32
    # stride 2: 2-way conflict
    assert bank_conflict_degree(np.arange(32) * 2, 4) == 2


def test_broadcast_is_conflict_free():
    assert bank_conflict_degree(np.full(32, 7), 4) == 1


def test_shared_memory_allocation_and_limits():
    smem = SharedMemory(capacity_bytes=256)
    arr = smem.allocate("a", (32,), "float32")
    assert arr.nbytes == 128
    with pytest.raises(ResourceExhaustedError):
        smem.allocate("b", (64,), "float32")
    with pytest.raises(SimulationError):
        smem.allocate("a", (4,), "float32")
    with pytest.raises(SimulationError):
        smem.get("missing")


def test_shared_memory_access_accounting():
    smem = SharedMemory(capacity_bytes=4096)
    arr = smem.allocate("tile", (512,), "float32")
    degree, broadcast = smem.record_load(arr, np.full(32, 3))
    assert broadcast and degree == 1
    degree, broadcast = smem.record_load(arr, np.arange(32) * 2)
    assert not broadcast and degree == 2
    assert smem.conflict_extra == 1
    assert smem.record_store(arr, np.arange(32)) == 1
    assert smem.bytes_written == 32 * 4


# --- fp64 parity against a brute-force oracle ------------------------------
#
# 8-byte elements occupy two consecutive 4-byte banks; both accounting paths
# expand the access into its two word phases.  The oracle below recomputes
# the conflict degree the slow way — per phase, per bank, over the unique
# byte addresses — so any drift in either fast path (or between them) fails.

def _oracle_degree(indices, itemsize, banks=32, bank_bytes=4):
    indices = np.asarray(indices, dtype=np.int64)
    if indices.size == 0:
        return 0
    addresses = sorted(set(int(i) * itemsize for i in indices))
    if len(addresses) == 1:
        return 1  # broadcast
    degree = 1
    for phase in range(max(1, itemsize // bank_bytes)):
        hits = {}
        for address in addresses:
            bank = (address // bank_bytes + phase) % banks
            hits[bank] = hits.get(bank, 0) + 1
        degree = max(degree, max(hits.values()))
    return degree


@pytest.mark.parametrize("itemsize", [4, 8])
def test_bank_conflict_paths_agree_with_oracle(itemsize):
    from repro.gpu.shared_memory import bank_conflict_profile

    rng = np.random.default_rng(20260730)
    cases = [rng.integers(0, 96, size=int(rng.integers(1, 33)))
             for _ in range(300)]
    # adversarial patterns: contiguous, strided, same-bank, broadcast
    cases += [np.arange(32), np.arange(32) * 2, np.arange(32) * 16,
              np.arange(32) * 32, np.full(32, 7), np.array([5])]
    for indices in cases:
        expected = _oracle_degree(indices, itemsize)
        assert bank_conflict_degree(indices, itemsize) == expected, indices
        degrees, broadcasts, counts = bank_conflict_profile(
            np.asarray(indices, dtype=np.int64)[None, :], itemsize)
        assert int(degrees[0]) == expected, indices
        assert int(counts[0]) == indices.size


def test_fp64_bank_conflicts_pin_known_degrees():
    """Double-precision degrees on 4-byte-bank hardware, pinned exactly.

    A contiguous fp64 warp access is the classic 2-way conflict (lanes 0
    and 16 share banks); stride-16 in elements lands every lane in one
    bank pair (32-way); a broadcast is always conflict-free.
    """
    assert bank_conflict_degree(np.arange(32), 8) == 2
    assert bank_conflict_degree(np.arange(32) * 16, 8) == 32
    assert bank_conflict_degree(np.full(32, 11), 8) == 1
    # the same accesses through the vectorised (batched-engine) path, with
    # an inactive-lane mask thrown in
    from repro.gpu.shared_memory import bank_conflict_profile

    rows = np.stack([np.arange(32), np.arange(32) * 16, np.full(32, 11)])
    degrees, broadcasts, _ = bank_conflict_profile(rows, 8)
    assert degrees.tolist() == [2, 32, 1]
    assert broadcasts.tolist() == [False, False, True]
    mask = np.zeros((1, 32), dtype=bool)
    mask[0, :16] = True  # half-warp: contiguous fp64 is then conflict-free
    degrees, _, counts = bank_conflict_profile(np.arange(32)[None, :], 8,
                                               mask=mask)
    assert int(degrees[0]) == _oracle_degree(np.arange(16), 8) == 1
    assert int(counts[0]) == 16
