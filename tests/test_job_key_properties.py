"""Property tests for job-key canonicalisation (hypothesis).

The whole dedup story — executor claims, store upserts, warm resubmits —
rests on two properties of the key digest:

* **ordering invariance** — equivalent keys (same logical content, any
  mapping insertion order, ``plan_kwargs`` in any order) produce identical
  digests, or concurrent submitters would silently re-execute each other's
  work;
* **injectivity in practice** — distinct configurations never collide, or
  the store would serve one cell's payload for another; and because the
  legacy directory cache named its files with the *same* digest, the
  store migration can never merge two previously distinct entries.
"""

from __future__ import annotations

import os
import tempfile

from hypothesis import given, settings, strategies as st

from repro.experiments.cache import SimulationCache
from repro.scenarios.registry import ScenarioCase
from repro.scenarios.sweep import case_job_key
from repro.serialization import canonical_json
from repro.service.store import DIGEST_LENGTH, ResultStore

#: one shared store: digests are pure functions of (code version, key), so
#: no test here ever writes to it
_STORE = ResultStore(os.path.join(tempfile.mkdtemp(), "digests.sqlite"),
                     code_version=lambda: "cv-fixed")

TUNABLES = ("outputs_per_thread", "block_threads", "items_per_warp",
            "stage_depth")

plan_kwargs_st = st.dictionaries(st.sampled_from(TUNABLES),
                                 st.integers(1, 4096), max_size=len(TUNABLES))

_scalar_st = st.one_of(
    st.integers(-10**9, 10**9),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=16),
    st.booleans(),
    st.none(),
)
#: job-key mappings as the pipeline builds them: string field names (the
#: reserved ``code_version`` field is the store's own, never a caller's),
#: scalar / nested-mapping / list values
_field_st = st.text(min_size=1, max_size=12).filter(
    lambda s: s != "code_version")
key_st = st.dictionaries(
    _field_st,
    st.one_of(_scalar_st,
              st.dictionaries(_field_st, _scalar_st, max_size=3),
              st.lists(_scalar_st, max_size=4)),
    min_size=1, max_size=5)


@given(kwargs=plan_kwargs_st, rnd=st.randoms(use_true_random=False))
def test_plan_kwargs_ordering_never_changes_the_job_key(kwargs, rnd):
    items = list(kwargs.items())
    rnd.shuffle(items)
    original = ScenarioCase("conv2d", "p100", "float32", "model", "tiny",
                            kwargs)
    shuffled = ScenarioCase("conv2d", "p100", "float32", "model", "tiny",
                            dict(items))
    assert case_job_key(original) == case_job_key(shuffled)
    assert original.fingerprint() == shuffled.fingerprint()
    assert original == shuffled, \
        "canonicalised cases must dedupe as equal objects"


@given(key=key_st, rnd=st.randoms(use_true_random=False))
def test_mapping_insertion_order_never_changes_the_digest(key, rnd):
    items = list(key.items())
    rnd.shuffle(items)
    reordered = dict(items)
    assert _STORE.digest_for(key) == _STORE.digest_for(reordered)


@given(first=key_st, second=key_st)
def test_distinct_configurations_never_collide(first, second):
    first_digest = _STORE.digest_for(first)
    assert len(first_digest) == DIGEST_LENGTH
    if canonical_json(first) == canonical_json(second):
        assert first_digest == _STORE.digest_for(second)
    else:
        assert first_digest != _STORE.digest_for(second)


@settings(max_examples=25)  # touches the filesystem via the cache layout
@given(key=key_st)
def test_store_digests_match_legacy_cache_filenames(key):
    """The migration-compatibility property: the digest the store addresses
    ``key`` by is byte-identical to the filename the legacy directory cache
    used, so importing a legacy tree preserves every entry's identity and
    two distinct legacy entries land in two distinct rows."""
    import repro.experiments.cache as cache_mod

    original = cache_mod.code_version
    cache_mod.code_version = lambda: "cv-fixed"
    try:
        cache = SimulationCache(tempfile.mkdtemp())
        filename = os.path.basename(cache.entry_path(key))
    finally:
        cache_mod.code_version = original
    assert filename == _STORE.digest_for(key) + ".json"


@given(kwargs=plan_kwargs_st)
def test_distinct_plan_kwargs_produce_distinct_job_keys(kwargs):
    base = ScenarioCase("conv2d", "p100", "float32", "model", "tiny", {})
    tuned = ScenarioCase("conv2d", "p100", "float32", "model", "tiny", kwargs)
    if kwargs:
        assert case_job_key(base) != case_job_key(tuned)
        perturbed = dict(kwargs)
        first = next(iter(perturbed))
        perturbed[first] += 1
        assert case_job_key(tuned) != case_job_key(
            ScenarioCase("conv2d", "p100", "float32", "model", "tiny",
                         perturbed))
    else:
        assert case_job_key(base) == case_job_key(tuned)
