"""CLI tests for ``ssam-repro`` (the experiment runner).

Covers exit codes, unknown experiment names, ``--quick``, ``--jobs``,
``--no-cache``/``--cache-dir`` and JSON artifact emission, exercising the
whole pipeline through the same argument surface CI uses.
"""

from __future__ import annotations

import pytest

from repro.experiments import load_result, runner
from repro.experiments.parallel import resolve_workers
from repro.errors import ConfigurationError


def _main(args, capsys):
    code = runner.main(args)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_single_experiment_exit_code_and_output(capsys, tmp_path):
    code, out, _ = _main(["--experiment", "table1", "--no-cache"], capsys)
    assert code == 0
    assert "Table 1" in out
    assert "Tesla V100" in out


def test_unknown_experiment_name_rejected(capsys):
    with pytest.raises(SystemExit) as excinfo:
        runner.main(["--experiment", "table99"])
    assert excinfo.value.code == 2  # argparse usage error
    assert "invalid choice" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        runner.run_experiment("table99")


def test_invalid_jobs_value_rejected(capsys):
    with pytest.raises(SystemExit):
        runner.main(["--experiment", "table1", "--jobs", "-3"])
    with pytest.raises(ConfigurationError):
        resolve_workers(-3)
    assert resolve_workers(0) >= 1


def test_quick_all_runs_every_section(capsys, tmp_path):
    code, out, _ = _main(["--experiment", "all", "--quick", "--no-cache"], capsys)
    assert code == 0
    for section in ("Table 1", "Table 2", "Table 3", "Figure 4a", "Figure 5d",
                    "Figure 6c", "performance-model validation"):
        assert section in out, section


def test_quick_reduces_the_sweeps():
    quick = runner.run_experiment("figure4", quick=True)
    full_sizes = runner.EXPERIMENTS["figure4"].FILTER_SIZES
    quick_sizes = runner.EXPERIMENTS["figure4"].QUICK_FILTER_SIZES
    assert len(quick_sizes) < len(full_sizes)
    assert f"{quick_sizes[-1]}x{quick_sizes[-1]}" in quick
    assert "4x4" not in quick  # 4 is only in the full sweep


def test_quick_is_honored_by_every_experiment():
    """``run_experiment('all', quick=True)`` must thread --quick uniformly:
    the experiments with real simulation work shrink it, and even the
    static tables see the flag (their results are tagged quick)."""
    results = runner.run_experiment_results("all", quick=True)
    assert all(result.quick for result in results.values())
    # table2: shorter dependent chains, same measured latency
    assert results["table2"].metadata["chain_length"] == \
        runner.table2.QUICK_CHAIN_LENGTH
    # model: reduced sweep and claim extent, same verdicts
    assert results["model"].metadata["claim_max_extent"] == \
        runner.model_validation.QUICK_CLAIM_MAX_EXTENT
    assert all(results["model"].metadata["claims"].values())
    full_rows = runner.model_validation.run()
    quick_rows = results["model"].rows(kernel="register_cache_advantage")
    assert len(quick_rows) < len(full_rows)
    # the cross-engine cells shrink too: tiny instead of small
    assert results["model"].metadata["cross_engine"]["size"] == "tiny"


def test_jobs_flag_produces_identical_output(capsys, tmp_path):
    _, serial, _ = _main(["--experiment", "all", "--quick", "--no-cache"], capsys)
    _, parallel, _ = _main(["--experiment", "all", "--quick", "--no-cache",
                            "--jobs", "2"], capsys)
    assert parallel == serial


def test_json_artifact_emission_and_round_trip(capsys, tmp_path):
    out_dir = tmp_path / "artifacts"
    code, out, err = _main(["--experiment", "all", "--quick", "--no-cache",
                            "--output-dir", str(out_dir)], capsys)
    assert code == 0
    names = sorted(runner.EXPERIMENTS)
    assert sorted(p.name for p in out_dir.iterdir()) == \
        [f"{name}.json" for name in names]
    # every artifact loads back losslessly and re-renders the exact text
    results = runner.run_experiment_results("all", quick=True)
    for name in names:
        loaded = load_result(str(out_dir / f"{name}.json"))
        assert loaded == results[name]
        module = runner.EXPERIMENTS[name]
        assert module.render(loaded) == module.render(results[name])
        assert module.render(loaded) in out


def test_cache_dir_controls(capsys, tmp_path):
    cache_dir = tmp_path / "cache"
    _, first, _ = _main(["--experiment", "table2", "--quick",
                         "--cache-dir", str(cache_dir)], capsys)
    from repro.experiments.cache import SimulationCache

    populated = SimulationCache(str(cache_dir))
    assert populated.entry_count() > 0, "cache population expected"
    entry = populated.result_store().dump()[0]
    assert "payload" in entry and "key" in entry
    # a second run must serve from cache and print identical text
    _, second, err = _main(["--experiment", "table2", "--quick",
                            "--cache-dir", str(cache_dir)], capsys)
    assert second == first
    assert "0 misses" in err
    # --no-cache leaves the directory untouched
    no_cache_dir = tmp_path / "never"
    _main(["--experiment", "table2", "--quick", "--no-cache",
           "--cache-dir", str(no_cache_dir)], capsys)
    assert not no_cache_dir.exists()


def test_tune_experiment_cli_path(capsys, tmp_path):
    """``--experiment tune`` runs the two-stage autotuner end to end: report
    on stdout, JSON artifact on disk, warm rerun served from the cache."""
    out_dir = tmp_path / "artifacts"
    cache_dir = tmp_path / "cache"
    code, out, _ = _main(["--experiment", "tune", "--quick",
                          "--cache-dir", str(cache_dir),
                          "--output-dir", str(out_dir)], capsys)
    assert code == 0
    assert "Launch-configuration autotuner" in out
    assert "tune digest:" in out
    artifact = load_result(str(out_dir / "tune.json"))
    assert artifact.experiment == "tune"
    # 10 kernels x 4 architectures x 2 precisions
    assert len(artifact.measurements) == 80
    _, warm_out, warm_err = _main(["--experiment", "tune", "--quick",
                                   "--cache-dir", str(cache_dir)], capsys)
    # artifact emission goes to stderr, so stdout is byte-identical warm
    assert warm_out == out
    assert "0 misses" in warm_err


# ------------------------------------------------------ service CLI surface

def test_serve_rejects_no_cache(capsys):
    """The daemon IS the shared cache; serving without one is nonsense."""
    with pytest.raises(SystemExit) as excinfo:
        runner.main(["--experiment", "serve", "--no-cache"])
    assert excinfo.value.code == 2
    assert "--no-cache" in capsys.readouterr().err


def test_submit_flag_validation(capsys):
    for bad in (["submit", "--tune", "--matrix", "tier1"],
                ["submit", "--tune", "--refresh"],
                ["submit", "--quick"]):
        with pytest.raises(SystemExit) as excinfo:
            runner.main(bad)
        assert excinfo.value.code == 2, bad
        capsys.readouterr()


def test_submit_without_a_running_daemon_is_a_clear_error(tmp_path):
    with pytest.raises(ConfigurationError, match="no running service"):
        runner.main(["submit", "--matrix", "smoke",
                     "--cache-dir", str(tmp_path)])


def test_submit_end_to_end_against_a_live_daemon(capsys, tmp_path):
    """``ssam-repro submit --wait`` renders the same sweep report the batch
    CLI would, from a daemon reached by explicit ``--url``."""
    import threading

    from repro.experiments.cache import SimulationCache
    from repro.service.daemon import serve

    cache = SimulationCache(str(tmp_path / "cache"))
    server, core = serve(cache, port=0, threads=2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    url = f"http://{host}:{port}"
    out_dir = tmp_path / "artifacts"
    try:
        code, out, err = _main(["submit", "--matrix", "smoke", "--wait",
                                "--url", url, "--output-dir", str(out_dir)],
                               capsys)
        assert code == 0
        assert "submitted sweep-" in err
        assert "sweep digest:" in out
        artifacts = list(out_dir.iterdir())
        assert len(artifacts) == 1
        assert load_result(str(artifacts[0])).experiment == "sweep"
        # fire-and-forget resubmit: run id on stdout, everything cached
        code, out, err = _main(["submit", "--matrix", "smoke",
                                "--url", url], capsys)
        assert code == 0
        assert out.strip().startswith("sweep-")
        assert " 0 queued" in err
    finally:
        server.shutdown()
        server.server_close()
        core.shutdown()
