"""Sampled-mode invariants for every SSAM kernel.

``max_blocks=`` runs only a uniformly spaced subset of the grid and scales
the counters to the full grid.  Two properties must hold for the sampling
to be a valid cost estimator:

* **counter scaling** — the scaled counters land within a small tolerance
  of the full-grid run (the grids are homogeneous up to edge blocks);
* **output integrity** — the blocks that *did* execute write exactly the
  same results as in a full run (sampling must never change the
  computation, only skip parts of it).

Output integrity is checked through the written-entry mask: unexecuted
blocks leave output entries at their zero initialisation, and with
strictly positive inputs/coefficients every written entry is non-zero, so
the non-zero entries of a sampled run must be bit-identical to the full
run at the same positions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.convolution.spec import ConvolutionSpec
from repro.kernels.conv1d_ssam import ssam_convolve1d
from repro.kernels.conv2d_ssam import ssam_convolve2d
from repro.kernels.scan_ssam import ssam_scan
from repro.kernels.stencil2d_ssam import ssam_stencil2d
from repro.kernels.stencil3d_ssam import ssam_stencil3d
from repro.stencils.catalog import CATALOG

#: counters whose sampled extrapolation must track the full run
SCALED_COUNTERS = (
    "fma", "shfl", "gmem_load", "gmem_store", "smem_broadcast",
    "gmem_load_transactions", "gmem_store_transactions",
    "dram_read_bytes", "dram_write_bytes",
)
#: relative tolerance of the extrapolation (edge blocks differ slightly)
RTOL = 0.15
#: sample size; chosen so the sampling stride is coprime to the test grids'
#: per-axis extents (a stride that is a multiple of the y/z extent would
#: over-represent boundary blocks and bias the halo-traffic extrapolation)
MAX_BLOCKS = 6


def _positive_image(shape, seed=7):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.5, 1.5, size=shape).astype(np.float32)


def _run_kernel(name, max_blocks=None):
    """Full or sampled run of one SSAM kernel on a fixed positive workload."""
    if name == "conv1d":
        taps = np.array([0.25, 0.5, 0.25])
        return ssam_convolve1d(_positive_image((8192,)), taps,
                               max_blocks=max_blocks, keep_output=True)
    # domain widths are chosen to give a single block along x (the warp
    # direction), so uniform-stride block sampling cannot alias with the
    # grid's x-periodicity (edge blocks along x do less store work)
    if name == "conv2d":
        spec = ConvolutionSpec.box(3)
        return ssam_convolve2d(_positive_image((96, 120)), spec,
                               max_blocks=max_blocks, keep_output=True)
    if name == "scan":
        return ssam_scan(_positive_image((4096,)),
                         max_blocks=max_blocks, keep_output=True)
    if name == "stencil2d":
        spec = CATALOG["2d5pt"].spec
        return ssam_stencil2d(_positive_image((96, 120)), spec, iterations=1,
                              max_blocks=max_blocks, keep_output=True)
    if name == "stencil3d":
        spec = CATALOG["3d7pt"].spec
        return ssam_stencil3d(_positive_image((32, 32, 30)), spec, iterations=1,
                              max_blocks=max_blocks, keep_output=True)
    raise AssertionError(name)


KERNELS = ("conv1d", "conv2d", "scan", "stencil2d", "stencil3d")


@pytest.mark.parametrize("name", KERNELS)
def test_sampled_counters_scale_to_full_grid(name):
    full = _run_kernel(name)
    sampled = _run_kernel(name, max_blocks=MAX_BLOCKS)
    assert sampled.launch.sampled
    assert sampled.launch.blocks_executed < full.launch.blocks_executed
    assert sampled.launch.counters.blocks_executed == pytest.approx(
        full.launch.counters.blocks_executed, rel=RTOL)
    full_counts = full.launch.counters.as_dict()
    sampled_counts = sampled.launch.counters.as_dict()
    for counter in SCALED_COUNTERS:
        if full_counts[counter] == 0:
            assert sampled_counts[counter] == 0
        else:
            assert sampled_counts[counter] == pytest.approx(
                full_counts[counter], rel=RTOL), counter


@pytest.mark.parametrize("name", ("conv1d", "conv2d", "stencil2d", "stencil3d"))
def test_sampled_blocks_write_identical_outputs(name):
    """Executed blocks of a sampled run reproduce the full run exactly."""
    full = _run_kernel(name)
    sampled = _run_kernel(name, max_blocks=MAX_BLOCKS)
    written = sampled.output != 0
    # the sample really ran something, but not everything
    assert written.any()
    assert not written.all()
    assert np.array_equal(sampled.output[written], full.output[written])


def test_sampled_scan_preserves_leading_block():
    """The scan's host carry pass sees zero sums for unexecuted blocks, so
    only the leading block (which needs no carry) is comparable — and it
    must be bit-identical."""
    full = _run_kernel("scan")
    sampled = _run_kernel("scan", max_blocks=MAX_BLOCKS)
    block = 128  # block_threads default
    assert np.array_equal(sampled.output[:block], full.output[:block])


@pytest.mark.parametrize("engine", ("legacy", "batched"))
def test_sampled_mode_identical_across_engines(engine):
    """Sampling composes with either execution engine bit-identically."""
    spec = ConvolutionSpec.box(3)
    image = _positive_image((96, 256))
    batch_size = 1 if engine == "legacy" else "auto"
    result = ssam_convolve2d(image, spec, max_blocks=MAX_BLOCKS,
                             batch_size=batch_size, keep_output=True)
    reference = ssam_convolve2d(image, spec, max_blocks=MAX_BLOCKS,
                                keep_output=True)
    assert np.array_equal(result.output, reference.output)
    assert result.launch.counters.as_dict() == reference.launch.counters.as_dict()
