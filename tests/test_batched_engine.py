"""Differential tests: the batched engine vs. the legacy per-block engine.

Every test runs the same kernel twice — once with ``batch_size=1`` (the
legacy :class:`~repro.gpu.block.BlockContext` loop) and once with the
batched engine — and asserts **bit-identical** outputs plus **identical**
:class:`~repro.gpu.counters.KernelCounters`.  Domains are chosen so that
grids contain partial/masked edge blocks in every dimension.
"""

import numpy as np
import pytest

from repro.convolution.spec import ConvolutionSpec
from repro.gpu.kernel import (
    DEFAULT_BATCH_MEMORY_BYTES,
    Kernel,
    LaunchConfig,
    MAX_AUTO_BATCH_BLOCKS,
    auto_batch_size,
    grid_1d,
)
from repro.errors import LaunchError
from repro.gpu.memory import GlobalMemory, rowwise_unique_counts
from repro.gpu.shared_memory import bank_conflict_degree, bank_conflict_profile
from repro.kernels.conv1d_ssam import ssam_convolve1d
from repro.kernels.conv2d_ssam import ssam_convolve2d
from repro.kernels.scan_ssam import ssam_scan
from repro.kernels.stencil2d_ssam import ssam_stencil2d
from repro.kernels.stencil3d_ssam import ssam_stencil3d
from repro.stencils.catalog import get_stencil
from repro.workloads import random_grid_3d, random_image, sequence


def assert_equivalent(legacy, batched):
    """Outputs bit-identical, counters identical field by field."""
    if legacy.output is None:
        assert batched.output is None
    else:
        assert legacy.output.dtype == batched.output.dtype
        np.testing.assert_array_equal(legacy.output, batched.output)
    legacy_counters = legacy.launch.counters.as_dict()
    batched_counters = batched.launch.counters.as_dict()
    mismatched = {name: (legacy_counters[name], batched_counters[name])
                  for name in legacy_counters
                  if legacy_counters[name] != batched_counters[name]}
    assert not mismatched, f"counter mismatch: {mismatched}"


# --- the five SSAM kernels -----------------------------------------------------

@pytest.mark.parametrize("batch_size", ["auto", 7])
@pytest.mark.parametrize("size", [3, 5])
def test_conv2d_batched_matches_legacy(size, batch_size):
    spec = ConvolutionSpec.random(size, seed=size)
    image = random_image(97, 83, seed=1)  # partial blocks on both grid edges
    legacy = ssam_convolve2d(image, spec, "p100", batch_size=1)
    batched = ssam_convolve2d(image, spec, "p100", batch_size=batch_size)
    assert_equivalent(legacy, batched)


def test_conv2d_batched_matches_legacy_rectangular_double():
    spec = ConvolutionSpec.random(5, 3, seed=9)
    image = random_image(66, 41, precision="float64", seed=2)
    legacy = ssam_convolve2d(image, spec, "v100", precision="float64", batch_size=1)
    batched = ssam_convolve2d(image, spec, "v100", precision="float64")
    assert_equivalent(legacy, batched)


def test_conv1d_batched_matches_legacy():
    data = sequence(301, seed=3)
    taps = np.array([0.25, 0.5, 0.25, -0.1, 0.3])
    legacy = ssam_convolve1d(data, taps, batch_size=1)
    batched = ssam_convolve1d(data, taps)
    assert_equivalent(legacy, batched)


@pytest.mark.parametrize("name", ["2d5pt", "2d9pt", "2d121pt"])
def test_stencil2d_batched_matches_legacy(name):
    spec = get_stencil(name)
    grid = random_image(70, 45, seed=2)
    legacy = ssam_stencil2d(grid, spec, iterations=2, batch_size=1)
    batched = ssam_stencil2d(grid, spec, iterations=2)
    assert_equivalent(legacy, batched)


@pytest.mark.parametrize("name", ["3d7pt", "3d27pt"])
def test_stencil3d_batched_matches_legacy(name):
    spec = get_stencil(name)
    grid = random_grid_3d(25, 17, 9, seed=4)  # masked edges in x, y and z
    legacy = ssam_stencil3d(grid, spec, iterations=1, batch_size=1)
    batched = ssam_stencil3d(grid, spec, iterations=1)
    assert_equivalent(legacy, batched)


@pytest.mark.parametrize("length", [33, 1000])
def test_scan_batched_matches_legacy(length):
    data = sequence(length, seed=length)
    legacy = ssam_scan(data, batch_size=1)
    batched = ssam_scan(data)
    assert_equivalent(legacy, batched)


# --- the functional baselines ---------------------------------------------------

def test_baseline_conv2d_batched_matches_legacy():
    from repro.baselines.conv2d import (
        arrayfire_like_convolve2d,
        halide_like_convolve2d,
        npp_like_convolve2d,
    )

    spec = ConvolutionSpec.gaussian(5)
    image = random_image(130, 71, seed=6)
    for runner in (npp_like_convolve2d, arrayfire_like_convolve2d,
                   halide_like_convolve2d):
        legacy = runner(image, spec, batch_size=1)
        batched = runner(image, spec)
        assert_equivalent(legacy, batched)


def test_baseline_stencils_batched_matches_legacy():
    from repro.baselines.stencil2d import (
        halide_like_stencil2d,
        original_stencil2d,
        ppcg_like_stencil2d,
    )
    from repro.baselines.stencil3d import original_stencil3d

    spec2d = get_stencil("2d9pt")
    grid2d = random_image(70, 45, seed=7)
    for runner in (original_stencil2d, ppcg_like_stencil2d, halide_like_stencil2d):
        assert_equivalent(runner(grid2d, spec2d, batch_size=1), runner(grid2d, spec2d))
    spec3d = get_stencil("3d7pt")
    grid3d = random_grid_3d(25, 17, 9, seed=8)
    assert_equivalent(original_stencil3d(grid3d, spec3d, batch_size=1),
                      original_stencil3d(grid3d, spec3d))


# --- engine plumbing -----------------------------------------------------------

def _axpy_kernel(ctx, x, y, out, n):
    idx = ctx.block_idx_x * ctx.block_threads + ctx.thread_idx_x
    mask = idx < n
    safe = np.minimum(idx, n - 1)
    a = ctx.load_global(x, safe, mask=mask)
    b = ctx.load_global(y, safe, mask=mask)
    ctx.store_global(out, safe, ctx.mad(a, ctx.full(2.0), b), mask=mask)


def _launch_axpy(n, **kwargs):
    memory = GlobalMemory()
    x = memory.to_device(np.arange(n, dtype=np.float32))
    y = memory.to_device(np.ones(n, dtype=np.float32))
    out = memory.allocate((n,), "float32")
    config = LaunchConfig(grid_dim=grid_1d(n, 128), block_threads=128)
    result = Kernel(_axpy_kernel).launch(config, (x, y, out, n), "p100", **kwargs)
    return result, out.to_host()


@pytest.mark.parametrize("batch_size", [2, 3, "auto"])
def test_masked_partial_warps_match_legacy(batch_size):
    legacy, legacy_out = _launch_axpy(300, batch_size=1)
    batched, batched_out = _launch_axpy(300, batch_size=batch_size)
    np.testing.assert_array_equal(legacy_out, batched_out)
    assert legacy.counters.as_dict() == batched.counters.as_dict()
    assert batched.blocks_executed == legacy.blocks_executed


def test_batched_sampling_matches_legacy_sampling():
    legacy, _ = _launch_axpy(128 * 64, max_blocks=8, batch_size=1)
    batched, _ = _launch_axpy(128 * 64, max_blocks=8, batch_size="auto")
    assert legacy.sampled and batched.sampled
    assert batched.blocks_executed == legacy.blocks_executed == 8
    assert legacy.counters.as_dict() == batched.counters.as_dict()


def test_batch_size_validation():
    with pytest.raises(LaunchError):
        _launch_axpy(256, batch_size=0)
    with pytest.raises(LaunchError):
        _launch_axpy(256, batch_size="bogus")


def test_auto_batch_size_bounds():
    config = LaunchConfig(grid_dim=(10, 10, 1), block_threads=128)
    blocks = auto_batch_size(config)
    assert 1 <= blocks <= MAX_AUTO_BATCH_BLOCKS
    # a tiny budget still yields at least one block per batch
    assert auto_batch_size(config, memory_budget_bytes=1) == 1
    # the budget bounds the batch: double budget, no smaller batch
    assert auto_batch_size(config,
                           memory_budget_bytes=2 * DEFAULT_BATCH_MEMORY_BYTES) >= blocks
    # declared shared memory counts against the budget
    fat = LaunchConfig(grid_dim=(10, 10, 1), block_threads=128,
                       shared_bytes_per_block=96 * 1024)
    assert auto_batch_size(fat) < blocks


def test_traffic_tracker_compaction_is_exact():
    """Folding pending line matrices early must not change unique-line bytes."""
    from repro.gpu.batch import BatchedTrafficTracker
    from repro.gpu.memory import DeviceBuffer

    buf = DeviceBuffer(array=np.zeros(4096, dtype=np.float32))
    rng = np.random.default_rng(0)
    recorded = [rng.integers(0, 4096, size=(3, 32)) for _ in range(10)]
    masks = [rng.random((3, 32)) < 0.8 for _ in range(10)]
    tracker = BatchedTrafficTracker(3, line_bytes=128, compact_columns=4)
    for indices, mask in zip(recorded, masks):
        tracker.record_read(buf, (indices * 4) // 128, mask)
    expected = sum(
        np.unique(np.concatenate(
            [(recorded[i][row][masks[i][row]] * 4) // 128 for i in range(10)]
        )).size
        for row in range(3)
    ) * 128.0
    assert tracker.finalize() == expected


# --- vectorised accounting helpers ----------------------------------------------

def test_rowwise_unique_counts_matches_np_unique():
    rng = np.random.default_rng(7)
    values = rng.integers(0, 50, size=(40, 32))
    mask = rng.random((40, 32)) < 0.7
    expected = np.array([np.unique(row[m]).size for row, m in zip(values, mask)])
    np.testing.assert_array_equal(rowwise_unique_counts(values, mask), expected)
    expected_full = np.array([np.unique(row).size for row in values])
    np.testing.assert_array_equal(rowwise_unique_counts(values), expected_full)


@pytest.mark.parametrize("itemsize", [4, 8])
def test_bank_conflict_profile_matches_scalar_degree(itemsize):
    rng = np.random.default_rng(11)
    indices = rng.integers(0, 256, size=(25, 32))
    mask = rng.random((25, 32)) < 0.8
    degrees, broadcasts, active = bank_conflict_profile(indices, itemsize, mask=mask)
    for r in range(indices.shape[0]):
        row = indices[r][mask[r]]
        assert degrees[r] == bank_conflict_degree(row, itemsize)
        assert active[r] == row.size
        assert broadcasts[r] == bool(row.size and np.unique(row).size == 1)
