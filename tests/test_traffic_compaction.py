"""Amortized compaction in the batched DRAM traffic tracker.

The tracker folds pending line matrices into sentinel-padded unique
segments.  These tests pin the two properties the size-tiered (LSM-style)
merge scheme guarantees:

* **exactness** — finalize equals a naive per-block set union on any
  pattern, masked or not, regardless of fold boundaries;
* **bounded work** — on the adversarial zero-reuse pattern (every access
  touches fresh cache lines, so the working set never stops growing),
  doubling the recorded volume costs at most a little over double the
  compaction work.  A single-compact-matrix scheme re-sorts the entire
  accumulated working set each fold, which is quadratic: doubling the
  volume would quadruple the work and fail the bound here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu.batch import BatchedTrafficTracker
from repro.gpu.memory import DeviceBuffer


def _buffer(buffer_id: int = 0) -> DeviceBuffer:
    return DeviceBuffer(array=np.zeros(1 << 20, dtype=np.float32),
                        name=f"buf{buffer_id}")


def _naive_bytes(records, num_blocks, line_bytes=128):
    """Reference: per-block set union of active lines."""
    per_block = [set() for _ in range(num_blocks)]
    for lines, mask in records:
        for b in range(num_blocks):
            active = lines[b] if mask is None else lines[b][mask[b]]
            per_block[b].update(int(x) for x in active)
    return float(sum(len(s) for s in per_block) * line_bytes)


@pytest.mark.parametrize("compact_columns", [4, 32, 256])
def test_finalize_matches_naive_union(compact_columns):
    """Fold/merge boundaries never change the counted traffic."""
    rng = np.random.default_rng(compact_columns)
    num_blocks, lanes = 7, 32
    buffer = _buffer()
    tracker = BatchedTrafficTracker(num_blocks,
                                    compact_columns=compact_columns)
    records = []
    for i in range(40):
        lines = rng.integers(0, 500, size=(num_blocks, lanes))
        mask = None if i % 3 == 0 else rng.random((num_blocks, lanes)) < 0.7
        records.append((lines, mask))
        tracker.record_read(buffer, lines, mask)
    assert tracker.finalize() == _naive_bytes(records, num_blocks)


def test_finalize_handles_multiple_buffers_and_reuse():
    rng = np.random.default_rng(1)
    num_blocks, lanes = 5, 16
    buffers = [_buffer(0), _buffer(1)]
    tracker = BatchedTrafficTracker(num_blocks, compact_columns=8)
    per_buffer = {0: [], 1: []}
    for i in range(30):
        which = i % 2
        # heavy reuse: a tiny line universe
        lines = rng.integers(0, 12, size=(num_blocks, lanes))
        per_buffer[which].append((lines, None))
        tracker.record_read(buffers[which], lines, None)
    expected = sum(_naive_bytes(per_buffer[w], num_blocks) for w in (0, 1))
    assert tracker.finalize() == expected


def _adversarial_work(num_records: int, compact_columns: int = 64) -> int:
    """Compaction work for ``num_records`` zero-reuse recordings."""
    num_blocks, lanes = 4, 32
    buffer = _buffer()
    tracker = BatchedTrafficTracker(num_blocks,
                                    compact_columns=compact_columns)
    for i in range(num_records):
        # every record touches lines never seen before: worst case for any
        # compaction scheme, the working set grows without bound
        base = i * lanes
        lines = np.broadcast_to(np.arange(base, base + lanes),
                                (num_blocks, lanes))
        tracker.record_read(buffer, lines, None)
    tracker.finalize()
    return tracker.compaction_work


def test_adversarial_compaction_work_is_amortized():
    """Doubling the zero-reuse volume at most ~doubles compaction work.

    Size-tiered merging costs O(n log n): work(2n)/work(n) stays near
    2 * log(2n)/log(n).  The quadratic single-matrix scheme this replaced
    sits at 4x and fails the bound.
    """
    work_n = _adversarial_work(256)
    work_2n = _adversarial_work(512)
    assert work_n > 0
    assert work_2n / work_n < 3.0


def test_reuse_pattern_work_is_linear():
    """With full reuse the working set is constant: work scales ~linearly."""
    def work(n):
        num_blocks, lanes = 4, 32
        tracker = BatchedTrafficTracker(num_blocks, compact_columns=64)
        buffer = _buffer()
        lines = np.broadcast_to(np.arange(lanes), (num_blocks, lanes))
        for _ in range(n):
            tracker.record_read(buffer, lines, None)
        tracker.finalize()
        return tracker.compaction_work

    work_n, work_2n = work(256), work(512)
    assert work_n > 0
    assert work_2n / work_n < 2.5


def test_segment_count_stays_logarithmic():
    """Live segments per buffer stay O(log recorded-columns)."""
    num_blocks, lanes = 2, 32
    buffer = _buffer()
    tracker = BatchedTrafficTracker(num_blocks, compact_columns=32)
    for i in range(1024):
        base = i * lanes
        lines = np.broadcast_to(np.arange(base, base + lanes),
                                (num_blocks, lanes))
        tracker.record_read(buffer, lines, None)
    (segments,) = tracker._segments.values()
    assert len(segments) <= 16  # ~log2(1024 * 32 / 32) plus slack
    # widths decrease geometrically: the size-tier invariant held
    widths = [s.shape[1] for s in segments]
    assert widths == sorted(widths, reverse=True)


def test_cached_buffers_are_not_tracked():
    tracker = BatchedTrafficTracker(2)
    cached = DeviceBuffer(array=np.zeros(64, dtype=np.float32),
                          name="weights", cached=True)
    tracker.record_read(cached, np.zeros((2, 8), dtype=np.int64), None)
    assert tracker.finalize() == 0.0
    assert tracker.compaction_work == 0
