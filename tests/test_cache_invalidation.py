"""Cache-invalidation tests: the code-version digest and stale entries.

The persistent simulation cache folds a digest of every source file under
``src/repro`` into each entry key; these tests pin down the two promises
that digest makes — edits to the simulator always change it, and a changed
digest means previously stored entries are never served again.
"""

from __future__ import annotations

import pathlib


from repro.experiments import cache as cache_mod
from repro.experiments import table1
from repro.experiments.cache import SimulationCache, digest_source_tree
from repro.experiments.parallel import execute_jobs


def _write(root: pathlib.Path, rel: str, text: str) -> None:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")


def _tree(root: pathlib.Path, files: dict) -> str:
    for rel, text in files.items():
        _write(root, rel, text)
    return digest_source_tree(str(root))


BASE = {"pkg/__init__.py": "", "pkg/sim.py": "STATE = 1\n"}


def test_digest_is_stable_for_identical_trees(tmp_path):
    first = _tree(tmp_path / "a", BASE)
    second = _tree(tmp_path / "b", BASE)
    assert first == second
    # and repeatable on the same tree
    assert digest_source_tree(str(tmp_path / "a")) == first


def test_digest_tracks_edits_additions_and_renames(tmp_path):
    baseline = _tree(tmp_path / "base", BASE)
    edited = _tree(tmp_path / "edited",
                   {**BASE, "pkg/sim.py": "STATE = 2\n"})
    added = _tree(tmp_path / "added",
                  {**BASE, "pkg/extra.py": "STATE = 1\n"})
    renamed = _tree(tmp_path / "renamed",
                    {"pkg/__init__.py": "", "pkg/simulator.py": "STATE = 1\n"})
    digests = {baseline, edited, added, renamed}
    assert len(digests) == 4, "every source mutation must change the digest"


def test_digest_ignores_non_python_files(tmp_path):
    baseline = _tree(tmp_path / "a", BASE)
    with_docs = _tree(tmp_path / "b", {**BASE, "pkg/README.md": "notes\n"})
    assert baseline == with_docs


NESTED = {"pkg/__init__.py": "", "pkg/sub/__init__.py": "",
          "pkg/sub/deep/mod.py": "STATE = 3\n", "top.py": "X = 0\n"}


def test_digest_hashes_posix_relative_paths(tmp_path):
    """The digest identity of a nested tree is its ``/``-separated paths.

    Recomputing the hash by hand with explicit posix separators pins the
    normalisation: a platform whose ``os.path.relpath`` yields another
    separator must still produce this exact digest.
    """
    import hashlib

    digest = _tree(tmp_path / "t", NESTED)
    # walk order: each directory's files sorted, then subdirectories sorted
    expected = hashlib.sha256()
    for rel in ["top.py", "pkg/__init__.py", "pkg/sub/__init__.py",
                "pkg/sub/deep/mod.py"]:
        expected.update(rel.encode())
        expected.update((tmp_path / "t" / rel).read_bytes())
    assert digest == expected.hexdigest()[:16]


def test_digest_normalises_windows_separators(tmp_path, monkeypatch):
    """A native separator other than ``/`` must not change the digest."""
    import os

    baseline = _tree(tmp_path / "t", NESTED)
    real_relpath = os.path.relpath
    monkeypatch.setattr(
        cache_mod.os.path, "relpath",
        lambda path, start: real_relpath(path, start).replace("/", "\\"))
    assert digest_source_tree(str(tmp_path / "t")) == baseline


def test_code_version_is_memoised_and_fed_from_the_package():
    assert cache_mod.code_version() == cache_mod.code_version()
    package_root = pathlib.Path(cache_mod.__file__).resolve().parent.parent
    assert cache_mod.code_version() == digest_source_tree(str(package_root))


def test_mutated_code_version_invalidates_stored_entries(tmp_path, monkeypatch):
    cache = SimulationCache(str(tmp_path))
    key = {"func": "worker", "params": {"x": 1}}
    cache.store(key, {"value": 42})
    assert cache.lookup(key) == {"value": 42}
    before = cache.entry_path(key)

    monkeypatch.setattr(cache_mod, "code_version", lambda: "f" * 16)
    stale_cache = SimulationCache(str(tmp_path))
    # the same logical key now addresses a different entry: a guaranteed miss
    assert stale_cache.entry_path(key) != before
    assert stale_cache.lookup(key) is None
    assert stale_cache.stats()["misses"] == 1


def test_stale_entries_are_never_served_by_the_pipeline(tmp_path, monkeypatch):
    jobs = table1.jobs(quick=True)
    cold = SimulationCache(str(tmp_path))
    payloads = execute_jobs(jobs, cache=cold)
    assert cold.stores == len(jobs)

    warm = SimulationCache(str(tmp_path))
    assert execute_jobs(jobs, cache=warm) == payloads
    assert warm.hits == len(jobs) and warm.misses == 0

    # a code change (simulated by mutating the digest) must force a full
    # recomputation: zero hits, every job re-executed and re-stored
    monkeypatch.setattr(cache_mod, "code_version", lambda: "0" * 16)
    invalidated = SimulationCache(str(tmp_path))
    assert execute_jobs(jobs, cache=invalidated) == payloads
    assert invalidated.hits == 0
    assert invalidated.misses == len(jobs)
    assert invalidated.stores == len(jobs)


def test_corrupted_entries_read_as_misses(tmp_path):
    import sqlite3

    cache = SimulationCache(str(tmp_path))
    key = {"func": "worker", "params": {}}
    cache.store(key, {"value": 1})
    digest = cache.result_store().digest_for(key)
    cache.close()
    with sqlite3.connect(cache.store_path) as conn:
        conn.execute("UPDATE results SET payload_json=? WHERE digest=?",
                     ("{not json", digest))
    fresh = SimulationCache(str(tmp_path))
    assert fresh.lookup(key) is None
    # entries whose payload is not a mapping are equally invalid
    fresh.close()
    with sqlite3.connect(cache.store_path) as conn:
        conn.execute("UPDATE results SET payload_json=? WHERE digest=?",
                     ("[1, 2]", digest))
    assert fresh.lookup(key) is None
    assert fresh.stats()["misses"] == 2


def test_legacy_directory_entries_migrate_into_the_store(tmp_path):
    """A pre-PR-7 one-JSON-per-entry tree is imported on first open.

    The legacy file digest and the store digest are byte-identical, so
    migrated entries stay addressable by the same logical key — and
    unreadable legacy files are skipped, not imported as garbage.
    """
    import json

    legacy = SimulationCache(str(tmp_path))
    key = {"func": "worker", "params": {"x": 7}}
    path = pathlib.Path(legacy.entry_path(key))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({"format": 1, "key": key,
                                "payload": {"value": 99}}), encoding="utf-8")
    broken = path.parent / "00" / "broken.json"
    broken.parent.mkdir(parents=True, exist_ok=True)
    broken.write_text("{not json", encoding="utf-8")

    migrated = SimulationCache(str(tmp_path))
    assert migrated.lookup(key) == {"value": 99}
    assert migrated.entry_count() == 1
    # legacy rows carry no code-version column: they count as stale for
    # refresh queries even though their digest pins the code version
    assert migrated.result_store().stale_entry_count() == 1
