"""Tests for occupancy, the block/kernel execution machinery and the profiler."""

import numpy as np
import pytest

from repro.dtypes import resolve_precision
from repro.errors import ConfigurationError, LaunchError, SimulationError
from repro.gpu.architecture import TESLA_P100, TESLA_V100
from repro.gpu.block import BlockContext
from repro.gpu.counters import KernelCounters, merge_counters
from repro.gpu.kernel import Kernel, LaunchConfig, grid_1d, grid_2d
from repro.gpu.memory import GlobalMemory
from repro.gpu.microbench import (
    DependentChain,
    IndependentStream,
    latency_throughput_gap,
    measure_latency,
    run_table2,
)
from repro.gpu.occupancy import compute_occupancy
from repro.gpu.profiler import estimate_time
from repro.gpu.simt import active_warp_count, divergent_warp_count, predicate_statistics


# --- occupancy ---------------------------------------------------------------

def test_full_occupancy_small_kernel():
    occ = compute_occupancy(TESLA_P100, 128, 32, 0)
    assert occ.occupancy == 1.0
    assert occ.active_warps_per_sm == 64


def test_register_limited_occupancy():
    occ = compute_occupancy(TESLA_P100, 256, 255, 0)
    assert occ.is_register_limited
    assert occ.occupancy < 0.5


def test_shared_memory_limited_occupancy():
    occ = compute_occupancy(TESLA_P100, 128, 32, 32 * 1024)
    assert occ.is_shared_memory_limited
    assert occ.active_blocks_per_sm == 2


def test_occupancy_rejects_bad_blocks():
    with pytest.raises(ConfigurationError):
        compute_occupancy(TESLA_P100, 0, 32, 0)
    with pytest.raises(ConfigurationError):
        compute_occupancy(TESLA_P100, 2048, 32, 0)
    with pytest.raises(ConfigurationError):
        compute_occupancy(TESLA_P100, 128, 32, 10**6)


@pytest.mark.parametrize("regs, expected_min", [(32, 64), (64, 32), (128, 16), (255, 8)])
def test_occupancy_decreases_with_register_pressure(regs, expected_min):
    occ = compute_occupancy(TESLA_V100, 128, regs, 0)
    assert occ.active_warps_per_sm >= expected_min // 2


# --- counters ----------------------------------------------------------------

def test_counters_merge_and_scale():
    a = KernelCounters(fma=10, shfl=2, dram_read_bytes=100.0)
    b = KernelCounters(fma=5, gmem_load=3)
    merged = merge_counters([a, b])
    assert merged.fma == 15 and merged.shfl == 2 and merged.gmem_load == 3
    scaled = merged.scaled(2.0)
    assert scaled.fma == 30 and scaled.dram_read_bytes == 200.0
    assert merged.flops == (2 * 15 + 0) * 32


def test_counters_round_trip_dict():
    counters = KernelCounters(fma=7, sync=2)
    clone = KernelCounters.from_dict(counters.as_dict())
    assert clone.fma == 7 and clone.sync == 2
    with pytest.raises(KeyError):
        KernelCounters.from_dict({"bogus": 1})


# --- SIMT helpers --------------------------------------------------------------

def test_active_and_divergent_warps():
    mask = np.zeros(96, dtype=bool)
    mask[:40] = True  # warp0 full, warp1 partial, warp2 empty
    assert active_warp_count(mask) == 2
    assert divergent_warp_count(mask) == 1
    active, divergent, fraction = predicate_statistics(mask)
    assert (active, divergent) == (2, 1)
    assert fraction == pytest.approx(40 / 96)


# --- block context / kernel launch ---------------------------------------------

def _axpy_kernel(ctx, x, y, out, n):
    idx = ctx.block_idx_x * ctx.block_threads + ctx.thread_idx_x
    mask = idx < n
    safe = np.minimum(idx, n - 1)
    a = ctx.load_global(x, safe, mask=mask)
    b = ctx.load_global(y, safe, mask=mask)
    ctx.store_global(out, safe, ctx.mad(a, ctx.full(2.0), b), mask=mask)


def test_kernel_launch_functional_and_counted():
    memory = GlobalMemory()
    n = 300
    x = memory.to_device(np.arange(n, dtype=np.float32))
    y = memory.to_device(np.ones(n, dtype=np.float32))
    out = memory.allocate((n,), "float32")
    config = LaunchConfig(grid_dim=grid_1d(n, 128), block_threads=128)
    result = Kernel(_axpy_kernel).launch(config, (x, y, out, n), "p100")
    np.testing.assert_allclose(out.to_host(), 2.0 * np.arange(n) + 1.0)
    assert result.counters.fma == 3 * 4  # 3 blocks x 4 warps
    # 2 loads per active warp; the last block has two fully masked-off warps
    assert result.counters.gmem_load == 20
    assert result.counters.dram_read_bytes > 0
    assert result.seconds > 0
    assert result.occupancy.occupancy > 0.5


def test_kernel_launch_sampling_scales_counters():
    memory = GlobalMemory()
    n = 128 * 64
    x = memory.to_device(np.ones(n, dtype=np.float32))
    y = memory.to_device(np.ones(n, dtype=np.float32))
    out = memory.allocate((n,), "float32")
    config = LaunchConfig(grid_dim=grid_1d(n, 128), block_threads=128)
    full = Kernel(_axpy_kernel).launch(config, (x, y, out, n), "p100")
    sampled = Kernel(_axpy_kernel).launch(config, (x, y, out, n), "p100", max_blocks=8)
    assert sampled.sampled and sampled.blocks_executed == 8
    assert sampled.counters.fma == pytest.approx(full.counters.fma, rel=0.01)


def test_kernel_launch_rejects_bad_block_size():
    config = LaunchConfig(grid_dim=(1, 1, 1), block_threads=48)
    with pytest.raises(LaunchError):
        Kernel(_axpy_kernel).launch(config, (None, None, None, 0), "p100")


def test_block_context_bounds_checking():
    memory = GlobalMemory()
    buf = memory.allocate((10,), "float32")
    counters = KernelCounters()
    ctx = BlockContext((0, 0, 0), (1, 1, 1), 32, TESLA_P100, counters,
                       resolve_precision("float32"))
    with pytest.raises(SimulationError):
        ctx.load_global(buf, np.full(32, 100, dtype=np.int64))
    with pytest.raises(SimulationError):
        ctx.load_global(buf, np.zeros(16, dtype=np.int64))


def test_block_context_shuffle_and_shared_roundtrip():
    counters = KernelCounters()
    ctx = BlockContext((0, 0, 0), (1, 1, 1), 64, TESLA_P100, counters,
                       resolve_precision("float32"))
    values = ctx.thread_idx_x.astype(np.float32)
    shifted = ctx.shfl_up(values, 1)
    assert shifted[33] == 32.0 and shifted[32] == 32.0
    smem = ctx.alloc_shared("buf", (64,))
    ctx.store_shared(smem, ctx.thread_idx_x, values)
    loaded = ctx.load_shared(smem, ctx.thread_idx_x[::-1].copy())
    np.testing.assert_array_equal(loaded, values[::-1])
    assert counters.shfl == 2
    assert counters.smem_store == 2
    ctx.syncthreads()
    assert counters.sync == 2


def test_grid_helpers():
    assert grid_1d(100, 32) == (4, 1, 1)
    assert grid_2d(100, 32, 50, 8) == (4, 7, 1)
    with pytest.raises(ConfigurationError):
        grid_1d(100, 0)


# --- profiler --------------------------------------------------------------------

def test_estimate_time_memory_bound_kernel():
    counters = KernelCounters(dram_read_bytes=1e9, dram_write_bytes=1e9, fma=1e4)
    timing = estimate_time(counters, TESLA_P100)
    assert timing.bottleneck == "dram"
    assert timing.total_seconds == pytest.approx(2e9 / TESLA_P100.effective_bandwidth_bytes,
                                                 rel=0.01)


def test_estimate_time_compute_bound_kernel():
    counters = KernelCounters(fma=1e9, dram_read_bytes=1e6)
    timing = estimate_time(counters, TESLA_V100)
    assert timing.bottleneck in ("arithmetic", "issue")
    assert timing.arithmetic_seconds > timing.dram_seconds


def test_double_precision_doubles_arithmetic_time():
    counters = KernelCounters(fma=1e9)
    single = estimate_time(counters, TESLA_P100, precision="float32")
    double = estimate_time(counters, TESLA_P100, precision="float64")
    assert double.arithmetic_seconds == pytest.approx(2 * single.arithmetic_seconds)


def test_low_occupancy_reduces_bandwidth_attainment():
    counters = KernelCounters(dram_read_bytes=1e9)
    high = estimate_time(counters, TESLA_P100,
                         occupancy=compute_occupancy(TESLA_P100, 128, 32, 0),
                         memory_parallelism=8)
    low = estimate_time(counters, TESLA_P100,
                        occupancy=compute_occupancy(TESLA_P100, 128, 255, 0),
                        memory_parallelism=1)
    assert low.bandwidth_attainment < high.bandwidth_attainment
    assert low.dram_seconds > high.dram_seconds


def test_bank_conflicts_increase_smem_time():
    clean = estimate_time(KernelCounters(smem_load=1e6), TESLA_P100)
    conflicted = estimate_time(KernelCounters(smem_load=1e6, smem_bank_conflicts=1e6),
                               TESLA_P100)
    assert conflicted.smem_seconds == pytest.approx(2 * clean.smem_seconds)


# --- micro-benchmarks (Table 2) ----------------------------------------------------

@pytest.mark.parametrize("arch, op, expected", [
    ("p100", "shfl", 33.0), ("p100", "fma", 6.0), ("p100", "smem_load", 33.0),
    ("v100", "shfl", 22.0), ("v100", "fma", 4.0), ("v100", "smem_load", 27.0),
])
def test_measured_latencies_match_table2(arch, op, expected):
    assert measure_latency(arch, op) == pytest.approx(expected)


def test_run_table2_structure():
    rows = run_table2()
    assert len(rows) == 6
    assert {row["gpu"] for row in rows} == {"Tesla P100", "Tesla V100"}


def test_dependent_chain_slower_than_independent_stream():
    assert latency_throughput_gap("p100", "fma") > 5
    assert latency_throughput_gap("v100", "shfl") > 10


def test_chain_validation():
    with pytest.raises(ConfigurationError):
        DependentChain("bogus_op")
    with pytest.raises(ConfigurationError):
        IndependentStream("fma", 0)


def test_occupancy_triple_is_self_consistent():
    """blocks/warps/threads always describe the same resident set: warps and
    threads are exact multiples of the block count, and no derived value can
    exceed its hardware cap."""
    for arch in (TESLA_P100, TESLA_V100):
        for block_threads in (32, 64, 96, 128, 256, 512, 1024):
            for regs in (0, 24, 32, 64, 128, 255):
                for smem in (0, 1024, 16 * 1024, 48 * 1024):
                    if smem > arch.shared_memory_per_block:
                        continue
                    occ = compute_occupancy(arch, block_threads, regs, smem)
                    # warps allocate in granules (cf. warp_allocation_granularity)
                    raw = -(-block_threads // arch.warp_size)
                    gran = arch.warp_allocation_granularity
                    warps_per_block = -(-raw // gran) * gran
                    assert occ.active_warps_per_sm == \
                        occ.active_blocks_per_sm * warps_per_block
                    assert occ.active_threads_per_sm == \
                        occ.active_blocks_per_sm * block_threads
                    assert occ.active_warps_per_sm <= arch.max_warps_per_sm
                    assert occ.active_threads_per_sm <= arch.max_threads_per_sm
                    assert occ.limits[occ.limiting_factor] == occ.active_blocks_per_sm


def test_occupancy_tie_break_follows_the_documented_priority():
    """When several limits bind at the same block count, the reported factor
    is the highest-priority one (resource limits before slot limits), not
    whatever dict insertion order happens to produce."""
    from repro.gpu.occupancy import LIMIT_PRIORITY

    assert LIMIT_PRIORITY == ("registers", "shared_memory", "warps",
                              "threads", "blocks")
    # P100, 128 threads, 32 regs: warps, threads and registers all limit at
    # 16 resident blocks; the documented priority picks registers
    occ = compute_occupancy(TESLA_P100, 128, 32, 0)
    assert occ.limits["warps"] == occ.limits["threads"] == occ.limits["registers"] == 16
    assert occ.limiting_factor == "registers"
    # with no register pressure the tie between warps and threads resolves
    # to warps (higher priority than threads)
    occ = compute_occupancy(TESLA_P100, 128, 0, 0)
    assert occ.limits["warps"] == occ.limits["threads"] == 16
    assert occ.limiting_factor == "warps"
