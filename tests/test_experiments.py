"""Integration tests for the table/figure experiment harnesses and the CLI."""

import pytest

from repro.analysis import (
    crossover_points,
    format_series,
    format_table,
    gcells_per_second,
    geometric_mean,
    gflops,
    speedup,
    winner,
)
from repro.errors import ConfigurationError
from repro.experiments import figure4, figure5, figure6, model_validation, table1, table2, table3
from repro.experiments.runner import main as runner_main
from repro.experiments.runner import run_experiment


# --- analysis helpers ----------------------------------------------------------------

def test_metric_conversions():
    assert gcells_per_second(1_000_000_000, 2, 1.0) == 2.0
    assert gflops(1_000_000_000, 1, 9, 1.0) == 9.0
    assert speedup(2.0, 1.0) == 2.0
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    assert winner({"a": 2.0, "b": 1.0}) == "b"
    with pytest.raises(ConfigurationError):
        gcells_per_second(1, 1, 0.0)
    with pytest.raises(ConfigurationError):
        geometric_mean([])


def test_crossover_detection():
    xs = [1, 2, 3, 4]
    assert crossover_points(xs, [1, 2, 3, 4], [4, 3, 2, 1]) == [2.5]
    assert crossover_points(xs, [1, 1, 1, 1], [2, 2, 2, 2]) == []
    with pytest.raises(ConfigurationError):
        crossover_points([1], [1, 2], [1, 2])


def test_table_formatting():
    text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}])
    assert "a" in text and "10" in text and "0.12" in text
    assert format_table([]) == "(no data)"
    series = format_series("demo", "x", [1, 2], {"s": [1.0, None]})
    assert "demo" in series


# --- tables ---------------------------------------------------------------------------

def test_table1_matches_paper():
    rows = table1.run()
    assert len(rows) == 4
    assert all(row["matches_paper"] for row in rows)
    assert "Table 1" in table1.report()


def test_table2_matches_paper():
    rows = table2.run()
    assert len(rows) == 6
    assert all(row["matches_paper"] for row in rows)


def test_table3_matches_paper():
    rows = table3.run()
    assert len(rows) == 15
    assert all(row["matches_paper"] for row in rows)
    assert "8192" in table3.report()


# --- figures (reduced sweeps keep the tests fast) ----------------------------------------

def test_figure4_panel_structure_and_claims():
    panel = figure4.run("p100", "float32", filter_sizes=(3, 7, 11, 15), )
    assert set(panel["milliseconds"]) == set(figure4.IMPLEMENTATIONS)
    assert len(panel["milliseconds"]["ssam"]) == 4
    summary = panel["summary"]
    assert summary["ssam_vs_npp_geomean_speedup"] > 1.5
    assert summary["ssam_fastest_fraction"] >= 0.75


def test_figure4_arrayfire_series_has_gaps_above_16():
    panel = figure4.run("v100", "float32", filter_sizes=(15, 16, 17, 20))
    assert panel["milliseconds"]["arrayfire"][2] is None
    assert panel["milliseconds"]["arrayfire"][0] is not None


def test_figure5_ssam_wins_most_benchmarks():
    panel = figure5.run("p100", "float32",
                        benchmarks=("2d5pt", "2d9pt", "2d25pt", "3d7pt", "poisson"))
    assert panel["ssam_wins"] >= 4
    throughput = panel["gcells_per_second"]["ssam"][0]
    assert 30.0 < throughput < 95.0   # paper: ~60 GCells/s for 2d5pt on P100


def test_figure5_double_precision_roughly_halves_throughput():
    single = figure5.run("p100", "float32", benchmarks=("2d5pt",))
    double = figure5.run("p100", "float64", benchmarks=("2d5pt",))
    ratio = single["gcells_per_second"]["ssam"][0] / double["gcells_per_second"]["ssam"][0]
    assert 1.5 < ratio < 2.6


def test_figure5_v100_faster_than_p100():
    p100 = figure5.run("p100", "float32", benchmarks=("2d5pt",))
    v100 = figure5.run("v100", "float32", benchmarks=("2d5pt",))
    assert v100["gcells_per_second"]["ssam"][0] > p100["gcells_per_second"]["ssam"][0]


def test_figure6_panel_contains_published_references():
    panel = figure6.run("p100", "float32", benchmarks=("2d5pt", "3d7pt"), time_steps=32)
    assert panel["gcells_per_second"]["diffusion"][1] == pytest.approx(92.7)
    assert panel["gcells_per_second"]["bricks"][1] == pytest.approx(41.4)
    assert panel["gcells_per_second"]["ssam"][0] > 0


def test_model_validation_claims_hold():
    claims = model_validation.claims()
    assert claims["eq5_advantage_positive_for_all_M_N_ge_2"]
    assert claims["halo_adjusted_advantage_grows_with_filter"]
    assert claims["halo_adjusted_advantage_positive_for_M_ge_5"]
    assert claims["halo_adjusted_advantage_positive_for_M_ge_6_on_modern"]
    # the advantage sweep covers the paper parts plus ampere/hopper
    assert len(model_validation.run()) == 32


def test_paper_positivity_claim_does_not_extrapolate_to_hopper():
    """H100's DRAM latency flips the M=5 halo-adjusted advantage negative."""
    claims = model_validation.claims(architectures=("h100",))
    assert claims["eq5_advantage_positive_for_all_M_N_ge_2"]
    assert claims["halo_adjusted_advantage_grows_with_filter"]
    assert not claims["halo_adjusted_advantage_positive_for_M_ge_5"]
    assert model_validation.claims(architectures=("a100",))[
        "halo_adjusted_advantage_positive_for_M_ge_5"]


# --- runner / CLI ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", ["table1", "table2", "table3", "model"])
def test_run_experiment_by_name(name):
    assert len(run_experiment(name)) > 50


def test_run_experiment_unknown_name():
    with pytest.raises(SystemExit):
        run_experiment("table99")


def test_cli_quick_figure(capsys):
    assert runner_main(["--experiment", "table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
