"""Correctness and cost tests for the SSAM kernels (Listings 1 and 2, Sec. 4.9, scan)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.convolution.spec import ConvolutionSpec
from repro.core.plan import plan_convolution, plan_stencil
from repro.errors import ConfigurationError
from repro.kernels.conv1d_ssam import ssam_convolve1d, reference_convolve1d
from repro.kernels.conv2d_ssam import analytic_counters as conv_analytic_counters
from repro.kernels.conv2d_ssam import analytic_launch as conv_analytic_launch
from repro.kernels.conv2d_ssam import ssam_convolve2d
from repro.kernels.scan_ssam import reference_scan, ssam_scan
from repro.kernels.stencil2d_ssam import analytic_counters as st2_analytic_counters
from repro.kernels.stencil2d_ssam import ssam_stencil2d
from repro.kernels.stencil3d_ssam import analytic_counters as st3_analytic_counters
from repro.kernels.stencil3d_ssam import ssam_stencil3d
from repro.stencils.catalog import get_stencil
from repro.workloads import random_grid_3d, random_image, sequence

TOL32 = dict(rtol=2e-5, atol=2e-5)


# --- 2-D convolution (Listing 1) --------------------------------------------------

@pytest.mark.parametrize("size", [2, 3, 4, 5, 7, 9, 12])
def test_conv2d_matches_reference_square_filters(size):
    spec = ConvolutionSpec.random(size, seed=size)
    image = random_image(83, 61, seed=1)
    result = ssam_convolve2d(image, spec, "p100")
    np.testing.assert_allclose(result.output, spec.reference(image), **TOL32)


@pytest.mark.parametrize("width, height", [(5, 3), (3, 7), (9, 2)])
def test_conv2d_matches_reference_rectangular_filters(width, height):
    spec = ConvolutionSpec.random(width, height, seed=width * height)
    image = random_image(70, 50, seed=2)
    result = ssam_convolve2d(image, spec, "v100")
    np.testing.assert_allclose(result.output, spec.reference(image), **TOL32)


def test_conv2d_double_precision():
    spec = ConvolutionSpec.gaussian(5)
    image = random_image(64, 48, precision="float64", seed=3)
    result = ssam_convolve2d(image, spec, "p100", precision="float64")
    np.testing.assert_allclose(result.output, spec.reference(image), rtol=1e-12)


@pytest.mark.parametrize("p", [1, 2, 4, 6])
def test_conv2d_any_sliding_window_depth(p):
    spec = ConvolutionSpec.random(4, seed=7)
    image = random_image(60, 45, seed=4)
    result = ssam_convolve2d(image, spec, "p100", outputs_per_thread=p)
    np.testing.assert_allclose(result.output, spec.reference(image), **TOL32)
    assert result.parameters["P"] == p


def test_conv2d_image_smaller_than_one_warp_tile():
    spec = ConvolutionSpec.random(3, seed=5)
    image = random_image(17, 9, seed=5)
    result = ssam_convolve2d(image, spec, "p100")
    np.testing.assert_allclose(result.output, spec.reference(image), **TOL32)


def test_conv2d_rejects_non_edge_boundary():
    spec = ConvolutionSpec(weights=np.ones((3, 3)) / 9.0, boundary="wrap")
    with pytest.raises(ConfigurationError):
        ssam_convolve2d(random_image(32, 32), spec)


def test_conv2d_counters_follow_listing1():
    spec = ConvolutionSpec.random(5, seed=6)
    image = random_image(224, 64, seed=6)      # 2 x-blocks, 16 y-blocks
    result = ssam_convolve2d(image, spec, "p100")
    plan = plan_convolution(spec, "p100")
    blocks = plan.blocking.total_blocks(224, 64)
    warps = blocks * 4
    counters = result.launch.counters
    assert counters.fma == warps * plan.outputs_per_thread * spec.taps
    assert counters.shfl == warps * plan.outputs_per_thread * (spec.filter_width - 1)
    assert counters.smem_broadcast == counters.fma
    assert counters.dram_write_bytes == pytest.approx(224 * 64 * 4)


@pytest.mark.parametrize("size", [3, 8, 15])
def test_conv2d_analytic_profile_close_to_counted(size):
    spec = ConvolutionSpec.random(size, seed=size)
    image = random_image(448, 96, seed=7)
    plan = plan_convolution(spec, "p100")
    counted = ssam_convolve2d(image, spec, "p100", plan=plan).launch.counters
    analytic = conv_analytic_counters(spec, 448, 96, plan)
    assert analytic.fma == counted.fma
    assert analytic.shfl == counted.shfl
    assert analytic.smem_broadcast == counted.smem_broadcast
    assert analytic.gmem_load == counted.gmem_load
    assert analytic.gmem_store == pytest.approx(counted.gmem_store, rel=0.20)
    assert analytic.dram_read_bytes == pytest.approx(counted.dram_read_bytes, rel=0.45)
    assert analytic.dram_write_bytes == pytest.approx(counted.dram_write_bytes, rel=0.01)


def test_conv2d_analytic_launch_paper_scale_is_memory_or_compute_bound():
    small = conv_analytic_launch(ConvolutionSpec.gaussian(3), 8192, 8192, "p100")
    large = conv_analytic_launch(ConvolutionSpec.gaussian(20), 8192, 8192, "p100")
    assert small.launch.timing.bottleneck == "dram"
    assert large.milliseconds > small.milliseconds
    assert 0.5 < small.milliseconds < 5.0


@settings(max_examples=10, deadline=None)
@given(size=st.integers(min_value=2, max_value=10), seed=st.integers(0, 1000))
def test_conv2d_property_random_filters(size, seed):
    """Property: the systolic kernel equals the direct sum for any filter."""
    spec = ConvolutionSpec.random(size, seed=seed)
    image = random_image(49, 37, seed=seed)
    result = ssam_convolve2d(image, spec, "v100")
    np.testing.assert_allclose(result.output, spec.reference(image), rtol=5e-5, atol=5e-5)


# --- 2-D stencils (Listing 2, generalised) ------------------------------------------

@pytest.mark.parametrize("name", ["2d5pt", "2d9pt", "2d13pt", "2d17pt", "2d21pt",
                                  "2ds25pt", "2d25pt", "2d64pt", "2d81pt", "2d121pt"])
def test_stencil2d_matches_reference(name):
    spec = get_stencil(name)
    grid = random_image(77, 53, seed=11)
    result = ssam_stencil2d(grid, spec, iterations=1, architecture="p100")
    np.testing.assert_allclose(result.output, spec.reference(grid), **TOL32)


@pytest.mark.parametrize("iterations", [1, 2, 5])
def test_stencil2d_iterations(iterations):
    spec = get_stencil("2d5pt")
    grid = random_image(65, 47, seed=12)
    result = ssam_stencil2d(grid, spec, iterations=iterations, architecture="v100")
    np.testing.assert_allclose(result.output, spec.reference(grid, iterations),
                               rtol=1e-4, atol=1e-4)
    assert result.parameters["iterations"] == iterations


def test_stencil2d_double_precision():
    spec = get_stencil("2d9pt")
    grid = random_image(60, 44, precision="float64", seed=13)
    result = ssam_stencil2d(grid, spec, 2, "p100", precision="float64")
    np.testing.assert_allclose(result.output, spec.reference(grid, 2), rtol=1e-12)


def test_stencil2d_rejects_3d_spec_and_bad_iterations():
    with pytest.raises(ConfigurationError):
        ssam_stencil2d(random_image(32, 32), get_stencil("3d7pt"))
    with pytest.raises(ConfigurationError):
        ssam_stencil2d(random_image(32, 32), get_stencil("2d5pt"), iterations=0)


def test_stencil2d_shuffle_count_matches_program():
    spec = get_stencil("2d5pt")
    grid = random_image(140, 16, seed=14)
    plan = plan_stencil(spec, "p100")
    result = ssam_stencil2d(grid, spec, 1, "p100", plan=plan)
    warps = plan.blocking.total_blocks(140, 16) * plan.blocking.warps_per_block
    assert result.launch.counters.shfl == warps * plan.outputs_per_thread * 2


@pytest.mark.parametrize("name", ["2d5pt", "2d25pt", "2d121pt"])
def test_stencil2d_analytic_profile_instruction_exact(name):
    spec = get_stencil(name)
    plan = plan_stencil(spec, "v100")
    grid = random_image(200, 60, seed=15)
    counted = ssam_stencil2d(grid, spec, 2, "v100", plan=plan).launch.counters
    analytic = st2_analytic_counters(spec, 200, 60, plan, iterations=2)
    assert analytic.fma == counted.fma
    assert analytic.shfl == counted.shfl
    assert analytic.gmem_load == counted.gmem_load
    assert analytic.dram_read_bytes == pytest.approx(counted.dram_read_bytes, rel=0.6)


# --- 3-D stencils (Section 4.9) --------------------------------------------------------

@pytest.mark.parametrize("name", ["3d7pt", "3d13pt", "3d27pt", "3d125pt", "poisson"])
def test_stencil3d_matches_reference(name):
    spec = get_stencil(name)
    grid = random_grid_3d(38, 27, 9, seed=21)
    result = ssam_stencil3d(grid, spec, iterations=1, architecture="p100")
    np.testing.assert_allclose(result.output, spec.reference(grid), **TOL32)


def test_stencil3d_two_iterations_and_double():
    spec = get_stencil("3d7pt")
    grid = random_grid_3d(33, 21, 10, precision="float64", seed=22)
    result = ssam_stencil3d(grid, spec, 2, "v100", precision="float64")
    np.testing.assert_allclose(result.output, spec.reference(grid, 2), rtol=1e-12)


def test_stencil3d_uses_shared_memory_for_interwarp_axial_taps():
    spec = get_stencil("3d7pt")
    grid = random_grid_3d(40, 24, 12, seed=23)
    result = ssam_stencil3d(grid, spec, 1, "p100")
    counters = result.launch.counters
    assert counters.smem_store > 0       # slice centre rows published
    assert counters.smem_load > 0        # neighbour slices consumed
    assert counters.shfl > 0             # in-plane systolic shuffles


def test_stencil3d_rejects_2d_spec():
    with pytest.raises(ConfigurationError):
        ssam_stencil3d(random_grid_3d(16, 16, 4), get_stencil("2d5pt"))


def test_stencil3d_analytic_profile_matches_fma_and_shfl():
    spec = get_stencil("3d7pt")
    grid = random_grid_3d(60, 16, 8, seed=24)
    counted = ssam_stencil3d(grid, spec, 1, "p100").launch.counters
    analytic = st3_analytic_counters(spec, 60, 16, 8, "p100")
    assert analytic.fma == counted.fma
    assert analytic.shfl == counted.shfl
    assert analytic.gmem_store == pytest.approx(counted.gmem_store, rel=0.20)


# --- scan and 1-D convolution -------------------------------------------------------------

@pytest.mark.parametrize("length", [1, 31, 32, 33, 500, 4096])
def test_scan_matches_cumsum(length):
    data = sequence(length, seed=length)
    result = ssam_scan(data, "p100")
    np.testing.assert_allclose(result.output, reference_scan(data), rtol=1e-4, atol=1e-4)


def test_scan_counts_kogge_stone_shuffles():
    data = sequence(128, seed=1)
    result = ssam_scan(data, "v100", block_threads=128)
    # 5 shuffle stages x 4 warps in the single block
    assert result.launch.counters.shfl == 20
    with pytest.raises(ConfigurationError):
        ssam_scan(np.zeros((2, 2)))


@pytest.mark.parametrize("taps", [1, 2, 3, 5, 9, 15])
def test_conv1d_matches_reference(taps):
    data = sequence(777, seed=taps)
    filt = np.random.default_rng(taps).standard_normal(taps)
    result = ssam_convolve1d(data, filt, architecture="p100")
    np.testing.assert_allclose(result.output, reference_convolve1d(data, filt),
                               rtol=1e-4, atol=1e-4)


def test_conv1d_validation():
    with pytest.raises(ConfigurationError):
        ssam_convolve1d(sequence(10), np.ones(40))
    with pytest.raises(ConfigurationError):
        ssam_convolve1d(sequence(10), np.ones(3), anchor=5)
