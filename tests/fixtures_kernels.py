"""Deliberately buggy fixture kernels exercising the static verifier.

Three kernels, each planted with exactly one defect class the analyzer
must flag — and must locate (category, phase, access node):

* :func:`build_racy_stencil` — a shared-memory staging stencil whose
  barrier between the stage and the neighbour read is **missing**, so the
  read-write pair lands in one phase (a classic missing-``__syncthreads``
  race).
* :func:`build_oob_conv` — a 3-point convolution whose right-halo clamp is
  off by one (``min(i + 1, length)`` instead of ``length - 1``), reading
  one element past the buffer in the last block only.  The recorded chunk
  (block 0) executes cleanly; the bug is invisible to the dynamic engine
  unless the faulty block happens to run.
* :func:`build_strided_scan` — a scan staging copy through a stride-32
  shared tile, landing every lane of a warp in bank 0 (degree-32 conflict
  on 4-byte elements).

Each builder returns ``(kernel, config, args)`` ready for
:func:`repro.trace.replay.record_trace` /
:meth:`repro.gpu.kernel.Kernel.launch`; ``record_fixture_trace`` records
the leading block(s) the way the replay engine would.
"""

from __future__ import annotations

import numpy as np

from repro.dtypes import resolve_precision
from repro.gpu.architecture import get_architecture
from repro.gpu.counters import KernelCounters
from repro.gpu.kernel import Kernel, LaunchConfig
from repro.gpu.memory import GlobalMemory
from repro.trace.replay import _block_index_matrix, record_trace


def _linear_setup(num_blocks: int, block_threads: int, precision: str,
                  slack: int = 0):
    """Src/dst buffers covering the grid exactly, plus the launch config."""
    prec = resolve_precision(precision)
    length = num_blocks * block_threads
    memory = GlobalMemory()
    rng = np.random.default_rng(length)
    data = rng.standard_normal(length + slack).astype(prec.numpy_dtype)
    src = memory.to_device(data, name="src")
    dst = memory.allocate((length + slack,), prec, name="dst")
    config = LaunchConfig(grid_dim=(num_blocks, 1, 1),
                          block_threads=block_threads,
                          precision=prec)
    return src, dst, length, config


# ------------------------------------------------------------ racy stencil

def _racy_stencil_block(ctx, src, dst, length):
    tid = ctx.thread_idx_x
    gidx = ctx.block_idx_x * ctx.block_threads + tid
    mask = gidx < length
    safe = np.minimum(gidx, length - 1)
    tile = ctx.alloc_shared("tile", (ctx.block_threads,))
    values = ctx.load_global(src, safe, mask=mask)
    ctx.store_shared(tile, tid, values)
    # BUG: no ctx.syncthreads() here — the neighbour read below races with
    # the staging store of the thread one lane over
    left = ctx.load_shared(tile, np.maximum(tid - 1, 0))
    ctx.store_global(dst, safe, ctx.add(values, left), mask=mask)


def build_racy_stencil(num_blocks: int = 4, block_threads: int = 64,
                       precision: str = "float32"):
    src, dst, length, config = _linear_setup(num_blocks, block_threads,
                                             precision)
    kernel = Kernel(_racy_stencil_block, name="fixture_racy_stencil")
    return kernel, config, (src, dst, length)


def _fixed_stencil_block(ctx, src, dst, length):
    """The same stencil with the barrier in place (the control fixture)."""
    tid = ctx.thread_idx_x
    gidx = ctx.block_idx_x * ctx.block_threads + tid
    mask = gidx < length
    safe = np.minimum(gidx, length - 1)
    tile = ctx.alloc_shared("tile", (ctx.block_threads,))
    values = ctx.load_global(src, safe, mask=mask)
    ctx.store_shared(tile, tid, values)
    ctx.syncthreads()
    left = ctx.load_shared(tile, np.maximum(tid - 1, 0))
    ctx.store_global(dst, safe, ctx.add(values, left), mask=mask)


def build_fixed_stencil(num_blocks: int = 4, block_threads: int = 64,
                        precision: str = "float32"):
    src, dst, length, config = _linear_setup(num_blocks, block_threads,
                                             precision)
    kernel = Kernel(_fixed_stencil_block, name="fixture_fixed_stencil")
    return kernel, config, (src, dst, length)


# ----------------------------------------------------------- off-by-one OOB

def _oob_conv_block(ctx, src, dst, length):
    tid = ctx.thread_idx_x
    gidx = ctx.block_idx_x * ctx.block_threads + tid
    center_idx = np.minimum(gidx, length - 1)
    # BUG: the right-halo clamp is off by one — the last thread of the last
    # block reads src[length], one element past the allocation
    right_idx = np.minimum(gidx + 1, length)
    left_idx = np.maximum(gidx - 1, 0)
    center = ctx.load_global(src, center_idx)
    right = ctx.load_global(src, right_idx)
    left = ctx.load_global(src, left_idx)
    total = ctx.add(ctx.add(center, right), left)
    ctx.store_global(dst, center_idx, total)


def build_oob_conv(num_blocks: int = 4, block_threads: int = 64,
                   precision: str = "float32"):
    src, dst, length, config = _linear_setup(num_blocks, block_threads,
                                             precision)
    kernel = Kernel(_oob_conv_block, name="fixture_oob_conv")
    return kernel, config, (src, dst, length)


# --------------------------------------------------------- strided bank scan

def _strided_scan_block(ctx, src, dst, length):
    tid = ctx.thread_idx_x
    gidx = ctx.block_idx_x * ctx.block_threads + tid
    mask = gidx < length
    safe = np.minimum(gidx, length - 1)
    # BUG: stride-32 staging — every lane of a warp maps to bank 0, a
    # degree-32 conflict on 4-byte elements
    tile = ctx.alloc_shared("tile", (ctx.block_threads * 32,))
    values = ctx.load_global(src, safe, mask=mask)
    ctx.store_shared(tile, tid * 32, values)
    ctx.syncthreads()
    staged = ctx.load_shared(tile, tid * 32)
    ctx.store_global(dst, safe, staged, mask=mask)


def build_strided_scan(num_blocks: int = 2, block_threads: int = 64,
                       precision: str = "float32"):
    src, dst, length, config = _linear_setup(num_blocks, block_threads,
                                             precision)
    kernel = Kernel(_strided_scan_block, name="fixture_strided_scan")
    return kernel, config, (src, dst, length)


# ------------------------------------------------------------------ helpers

def record_fixture_trace(kernel, config, args, architecture="p100",
                         blocks: int = 1, count_traffic: bool = True):
    """Record the leading ``blocks`` blocks eagerly, like the replay engine.

    Returns ``(trace, chunk_blocks, chunk_counters)`` — exactly the context
    :func:`repro.analysis.verify.verify_trace` takes for its
    static-vs-dynamic cross-check.
    """
    arch = get_architecture(architecture)
    counters = KernelCounters()
    chunk_blocks = _block_index_matrix(config.grid_dim)[:blocks]
    trace = record_trace(kernel, config, args, arch, counters,
                         count_traffic, chunk_blocks)
    return trace, chunk_blocks, counters.as_dict()
