"""Tests for the warp shuffle primitives (CUDA semantics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.gpu.warp import (
    Warp,
    ballot,
    lane_ids,
    shfl_down,
    shfl_idx,
    shfl_up,
    shfl_xor,
    warp_ids,
)


@pytest.fixture
def lanes():
    return np.arange(32, dtype=np.float32)


@pytest.mark.parametrize("delta", [0, 1, 2, 5, 31])
def test_shfl_up_semantics(lanes, delta):
    result = shfl_up(lanes, delta)
    # lanes below delta keep their own value (CUDA semantics)
    np.testing.assert_array_equal(result[:delta], lanes[:delta])
    np.testing.assert_array_equal(result[delta:], lanes[: 32 - delta])


@pytest.mark.parametrize("delta", [0, 1, 3, 16, 31])
def test_shfl_down_semantics(lanes, delta):
    result = shfl_down(lanes, delta)
    np.testing.assert_array_equal(result[: 32 - delta], lanes[delta:])
    if delta:
        np.testing.assert_array_equal(result[32 - delta:], lanes[32 - delta:])


@pytest.mark.parametrize("src", [0, 7, 31])
def test_shfl_idx_broadcast(lanes, src):
    np.testing.assert_array_equal(shfl_idx(lanes, src), np.full(32, lanes[src]))


@pytest.mark.parametrize("mask", [1, 2, 16, 31])
def test_shfl_xor_is_involution(lanes, mask):
    once = shfl_xor(lanes, mask)
    twice = shfl_xor(once, mask)
    np.testing.assert_array_equal(twice, lanes)


def test_shfl_up_multiple_warps():
    values = np.arange(64, dtype=np.float64)
    result = shfl_up(values, 1)
    # warp boundaries are respected: lane 32 keeps its own value
    assert result[32] == values[32]
    assert result[33] == values[32]
    assert result[0] == values[0]
    assert result[1] == values[0]


def test_shfl_rejects_bad_arguments(lanes):
    with pytest.raises(SimulationError):
        shfl_up(lanes, -1)
    with pytest.raises(SimulationError):
        shfl_idx(lanes, 32)
    with pytest.raises(SimulationError):
        shfl_xor(lanes, 99)
    with pytest.raises(SimulationError):
        shfl_up(np.arange(33, dtype=np.float32), 1)


def test_ballot_packs_bits():
    predicate = np.zeros(32, dtype=bool)
    predicate[[0, 3, 31]] = True
    packed = ballot(predicate)
    assert packed[0] == (1 | (1 << 3) | (1 << 31))


def test_lane_and_warp_ids():
    np.testing.assert_array_equal(lane_ids(66)[:34], list(range(32)) + [0, 1])
    np.testing.assert_array_equal(warp_ids(66)[[0, 31, 32, 65]], [0, 0, 1, 2])


def test_warp_register_storage():
    warp = Warp()
    warp.set_register("x", np.arange(32))
    np.testing.assert_array_equal(warp.get_register("x"), np.arange(32, dtype=np.float32))
    shifted = warp.shfl_up("x", 2)
    assert shifted[2] == 0.0 and shifted[31] == 29.0
    with pytest.raises(SimulationError):
        warp.get_register("missing")
    with pytest.raises(SimulationError):
        warp.set_register("bad", np.arange(31))


@settings(max_examples=50, deadline=None)
@given(delta=st.integers(min_value=0, max_value=31),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_shfl_up_then_down_identity_on_interior(delta, seed):
    """Property: up then down restores every lane that stayed in range."""
    rng = np.random.default_rng(seed)
    values = rng.standard_normal(32).astype(np.float32)
    round_trip = shfl_down(shfl_up(values, delta), delta)
    if delta == 0:
        np.testing.assert_array_equal(round_trip, values)
    else:
        np.testing.assert_array_equal(round_trip[:32 - delta], values[:32 - delta])


@settings(max_examples=50, deadline=None)
@given(delta=st.integers(min_value=1, max_value=31))
def test_shfl_up_preserves_multiset_except_tail(delta):
    """Property: shuffling moves values, it never invents new ones."""
    values = np.arange(32, dtype=np.float32)
    result = shfl_up(values, delta)
    assert set(result).issubset(set(values))
