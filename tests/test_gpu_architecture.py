"""Tests for the GPU architecture presets and Table 1 data."""

import pytest

from repro.errors import ConfigurationError
from repro.gpu.architecture import (
    A100,
    ARCHITECTURES,
    H100,
    MODERN_ARCHITECTURES,
    TESLA_K40,
    TESLA_M40,
    TESLA_P100,
    TESLA_V100,
    get_architecture,
    table1_rows,
)


@pytest.mark.parametrize("name, sms", [("k40", 15), ("m40", 24), ("p100", 56), ("v100", 80),
                                       ("a100", 108), ("h100", 132)])
def test_table1_sm_counts(name, sms):
    assert get_architecture(name).sm_count == sms


@pytest.mark.parametrize("name", list(ARCHITECTURES))
def test_register_file_size_is_256kib(name):
    arch = get_architecture(name)
    assert arch.registers_per_sm == 65536
    assert arch.registers_per_sm_bytes == 256 * 1024


@pytest.mark.parametrize("arch, kib", [(TESLA_K40, 48), (TESLA_M40, 96), (TESLA_P100, 64),
                                       (TESLA_V100, 96), (A100, 164), (H100, 228)])
def test_table1_shared_memory(arch, kib):
    assert arch.shared_memory_per_sm == kib * 1024


def test_register_to_shared_ratio_exceeds_paper_claim():
    # Section 2: register file is more than 2.7x larger than shared memory
    assert TESLA_P100.register_to_shared_ratio > 2.7
    assert TESLA_V100.register_to_shared_ratio > 2.6


def test_get_architecture_accepts_aliases():
    assert get_architecture("Tesla P100") is TESLA_P100
    assert get_architecture("V100") is TESLA_V100
    assert get_architecture(TESLA_P100) is TESLA_P100


def test_get_architecture_rejects_unknown():
    with pytest.raises(ConfigurationError) as excinfo:
        get_architecture("b200")
    # the error must name the valid presets so CLIs/HTTP callers can recover
    for name in ARCHITECTURES:
        assert name in str(excinfo.value)
    with pytest.raises(ConfigurationError):
        get_architecture(123)


def test_table1_rows_complete():
    rows = table1_rows()
    assert [row["gpu"] for row in rows] == ["Tesla K40", "Tesla M40", "Tesla P100", "Tesla V100"]
    assert all(row["registers_per_sm"] == 65536 for row in rows)


def test_volta_has_two_register_banks_pascal_four():
    # Section 7.1 (iii)
    assert TESLA_V100.register_banks == 2
    assert TESLA_P100.register_banks == 4
    assert TESLA_K40.register_banks == 4


def test_volta_caches_larger_than_pascal():
    # Section 7.1 (i)-(ii)
    assert TESLA_V100.l1_cache_bytes > 4 * TESLA_P100.l1_cache_bytes
    assert TESLA_V100.l2_cache_bytes == TESLA_P100.l2_cache_bytes * 3 // 2


def test_peak_flops_sane():
    assert 9e12 < TESLA_P100.peak_fp32_flops < 11e12
    assert 14e12 < TESLA_V100.peak_fp32_flops < 17e12
    assert TESLA_P100.peak_fp64_flops == pytest.approx(TESLA_P100.peak_fp32_flops / 2)


def test_cycles_seconds_roundtrip():
    cycles = 1.0e6
    assert TESLA_P100.seconds_to_cycles(TESLA_P100.cycles_to_seconds(cycles)) == pytest.approx(cycles)


def test_shared_memory_carveout():
    smaller = TESLA_V100.with_shared_memory_carveout(64 * 1024)
    assert smaller.shared_memory_per_sm == 64 * 1024
    assert smaller.shared_memory_per_block <= 64 * 1024
    with pytest.raises(ConfigurationError):
        TESLA_V100.with_shared_memory_carveout(0)


def test_summary_keys():
    summary = TESLA_P100.summary()
    assert summary["name"] == "Tesla P100"
    assert summary["sm_count"] == 56
    assert summary["register_to_shared_ratio"] == pytest.approx(4.0, rel=0.01)


def test_modern_architectures_listed():
    assert MODERN_ARCHITECTURES == (A100, H100)
    assert get_architecture("A100") is A100
    assert get_architecture("H100") is H100


@pytest.mark.parametrize("arch", [TESLA_K40, TESLA_M40, TESLA_P100, TESLA_V100])
def test_paper_parts_have_no_async_copy(arch):
    assert not arch.supports_async_copy
    assert arch.latencies.gmem_to_smem == 0.0


@pytest.mark.parametrize("arch", list(MODERN_ARCHITECTURES))
def test_modern_parts_have_async_copy(arch):
    assert arch.supports_async_copy
    assert arch.latencies.gmem_to_smem > 0.0


def test_modern_memory_hierarchy_grows():
    # each generation's capacities are monotone over its predecessor
    assert A100.shared_memory_per_sm > TESLA_V100.shared_memory_per_sm
    assert H100.shared_memory_per_sm > A100.shared_memory_per_sm
    assert A100.l2_cache_bytes > TESLA_V100.l2_cache_bytes
    assert H100.l2_cache_bytes > A100.l2_cache_bytes
    assert A100.memory_bandwidth_bytes > TESLA_V100.memory_bandwidth_bytes
    assert H100.memory_bandwidth_bytes > A100.memory_bandwidth_bytes


def test_modern_peak_flops_sane():
    # whitepaper figures: A100 ~19.5 TF FP32, H100 SXM ~60+ TF (vector FP32)
    assert 18e12 < A100.peak_fp32_flops < 21e12
    assert 55e12 < H100.peak_fp32_flops < 70e12
    assert H100.peak_fp64_flops == pytest.approx(H100.peak_fp32_flops / 2)


def test_h100_carveout_accepted_at_maximum():
    # with_shared_memory_carveout must admit Hopper's full 228 KB
    full = H100.with_shared_memory_carveout(228 * 1024)
    assert full.shared_memory_per_sm == 228 * 1024


@pytest.mark.parametrize("field", ["warp_allocation_granularity",
                                   "register_allocation_granularity",
                                   "shared_allocation_granularity"])
@pytest.mark.parametrize("bad", [0, -1])
def test_occupancy_rejects_invalid_granularities(field, bad):
    """A non-positive granularity must raise, not silently skip rounding."""
    from dataclasses import replace

    from repro.gpu.occupancy import compute_occupancy

    broken = replace(TESLA_P100, **{field: bad})
    with pytest.raises(ConfigurationError, match=field):
        compute_occupancy(broken, 128, 32, 1024)
    # the pristine preset still computes
    result = compute_occupancy(TESLA_P100, 128, 32, 1024)
    assert result.active_blocks_per_sm > 0
