"""Property-based soundness test of the index-range interval engine.

Hypothesis generates random data-free index expression trees over the
thread/block coordinates, a throwaway kernel computes each one under the
tracer, and the recorded trace is analyzed two ways:

* the concrete evaluator (:func:`repro.analysis.concrete.evaluate_data_free`)
  must reproduce a brute-force numpy enumeration of the expression over
  every (block, thread) exactly, and
* the interval of **every** node must contain every value the node actually
  takes — the engine may over-approximate, never under-approximate.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.concrete import evaluate_data_free
from repro.analysis.ranges import RangeAnalysis
from repro.dtypes import resolve_precision
from repro.gpu.architecture import get_architecture
from repro.gpu.counters import KernelCounters
from repro.gpu.kernel import Kernel, LaunchConfig
from repro.gpu.memory import GlobalMemory
from repro.trace.replay import _block_index_matrix, record_trace

#: kept tiny so int64 arithmetic cannot overflow even for pure-mul trees
MAX_CONST = 10
MAX_BLOCKS = 8
BLOCK_THREADS = 64

_LEAVES = st.one_of(
    st.just(("tid",)), st.just(("lane",)), st.just(("warp",)),
    st.just(("bx",)),
    st.integers(min_value=-MAX_CONST, max_value=MAX_CONST)
    .map(lambda c: ("const", c)),
)


def _extend(children):
    unary = st.tuples(st.sampled_from(["neg", "abs"]), children)
    binary = st.tuples(st.sampled_from(["add", "sub", "mul", "min", "max"]),
                       children, children)
    divlike = st.tuples(st.sampled_from(["mod", "floordiv"]), children,
                        st.integers(min_value=1, max_value=MAX_CONST))
    return st.one_of(unary, binary, divlike)


EXPRESSIONS = st.recursive(_LEAVES, _extend, max_leaves=8)


def _evaluate(node, coords):
    """Evaluate one AST node over a coordinate environment (numpy int64)."""
    op = node[0]
    if op in coords:
        return coords[op]
    if op == "const":
        return np.int64(node[1])
    if op == "neg":
        return -_evaluate(node[1], coords)
    if op == "abs":
        return np.abs(_evaluate(node[1], coords))
    a = _evaluate(node[1], coords)
    if op in ("mod", "floordiv"):
        divisor = np.int64(node[2])
        return a % divisor if op == "mod" else a // divisor
    b = _evaluate(node[2], coords)
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op == "min":
        return np.minimum(a, b)
    return np.maximum(a, b)


def _record_expression(expression, num_blocks):
    """Trace a kernel that computes ``expression`` and stores it linearly."""
    prec = resolve_precision("float64")
    memory = GlobalMemory()
    dst = memory.allocate((num_blocks * BLOCK_THREADS,), prec, name="dst")

    def body(ctx, dst):
        coords = {"tid": ctx.thread_idx_x, "lane": ctx.lane_id,
                  "warp": ctx.warp_id, "bx": ctx.block_idx_x}
        value = _evaluate(expression, coords)
        gidx = ctx.block_idx_x * ctx.block_threads + ctx.thread_idx_x
        ctx.store_global(dst, gidx, value)

    config = LaunchConfig(grid_dim=(num_blocks, 1, 1),
                          block_threads=BLOCK_THREADS, precision=prec)
    arch = get_architecture("p100")
    blocks = _block_index_matrix(config.grid_dim)
    trace = record_trace(Kernel(body, name="interval_probe"), config, (dst,),
                         arch, KernelCounters(), True, blocks)
    return trace, config, blocks


@settings(max_examples=60, deadline=None)
@given(expression=EXPRESSIONS,
       num_blocks=st.integers(min_value=1, max_value=MAX_BLOCKS))
def test_intervals_are_sound_and_evaluator_is_exact(expression, num_blocks):
    trace, config, blocks = _record_expression(expression, num_blocks)
    env = evaluate_data_free(trace, blocks)
    ranges = RangeAnalysis(trace, config.grid_dim)

    # 1. the concrete evaluator reproduces a brute-force enumeration of the
    # expression over every (block, thread) pair
    tid = np.arange(BLOCK_THREADS, dtype=np.int64)[None, :]
    warp_size = get_architecture("p100").warp_size
    coords = {
        "tid": np.broadcast_to(tid, (num_blocks, BLOCK_THREADS)),
        "lane": np.broadcast_to(tid % warp_size,
                                (num_blocks, BLOCK_THREADS)),
        "warp": np.broadcast_to(tid // warp_size,
                                (num_blocks, BLOCK_THREADS)),
        "bx": np.broadcast_to(
            np.arange(num_blocks, dtype=np.int64)[:, None],
            (num_blocks, BLOCK_THREADS)),
    }
    expected = np.broadcast_to(np.asarray(_evaluate(expression, coords)),
                               (num_blocks, BLOCK_THREADS))
    store = next(n for n in trace.nodes if n.op == "store_global")
    value_node = store.inputs[1]
    observed = np.broadcast_to(np.asarray(env[value_node]),
                               (num_blocks, BLOCK_THREADS))
    np.testing.assert_array_equal(observed, expected)

    # 2. soundness: every node's interval contains every value it takes
    for node_id, values in env.items():
        array = np.asarray(values)
        if array.dtype == np.bool_:
            array = array.astype(np.int64)
        interval = ranges.interval(node_id)
        assert not interval.empty
        lo, hi = float(array.min()), float(array.max())
        assert interval.lo <= lo and hi <= interval.hi, (
            f"interval [{interval.lo}, {interval.hi}] of node {node_id} "
            f"({trace.nodes[node_id].op}) under-approximates observed "
            f"[{lo}, {hi}] for expression {expression!r}")
