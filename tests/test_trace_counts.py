"""Trace-derived instruction counts vs the Section 5 ``model_*`` evaluators.

The trace IR records the kernel *implementation*; the performance model is a
set of *hand-written* closed-form formulas.  These tests derive static
instruction counts from each SSAM kernel's trace (recorded on a small
domain — the per-block profile is grid-independent) and check them against
the model evaluators at paper-scale problem sizes, within the bounds
documented in :data:`repro.trace.counts.MODEL_AGREEMENT_BOUNDS`.

A formula drifting from the code (or vice versa) fails here with the exact
counter named.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.convolution.spec import ConvolutionSpec
from repro.core.performance_model import (
    model_convolution1d,
    model_convolution2d,
    model_scan,
    model_stencil2d,
    model_stencil3d,
)
from repro.kernels.conv1d_ssam import CONV1D_SSAM_KERNEL, ssam_convolve1d
from repro.kernels.conv2d_ssam import CONV2D_SSAM_KERNEL, ssam_convolve2d
from repro.kernels.scan_ssam import SCAN_SSAM_KERNEL, ssam_scan
from repro.kernels.stencil2d_ssam import STENCIL2D_SSAM_KERNEL, ssam_stencil2d
from repro.kernels.stencil3d_ssam import STENCIL3D_SSAM_KERNEL, ssam_stencil3d
from repro.stencils.catalog import get_stencil
from repro.trace.counts import (
    MODEL_AGREEMENT_BOUNDS,
    block_counts,
    check_against_model,
    launch_counts,
    relative_errors,
)


def _trace_of(kernel):
    """Latest compiled replay program's trace for ``kernel``."""
    programs = [p for p in kernel._trace_cache.values() if p is not None]
    assert programs, f"no compiled trace for {kernel.name!r}"
    return programs[-1].trace


def _check(name, kernel, model_result):
    counters = model_result.launch.counters
    trace = _trace_of(kernel)
    derived = launch_counts(trace, int(counters.blocks_executed))
    bounds = MODEL_AGREEMENT_BOUNDS[name]
    errors = check_against_model(derived, counters, bounds, label=name)
    # at least the core arithmetic field must be compared for every kernel
    assert ("fma" in errors) or ("add" in errors)
    return derived, counters


def test_conv2d_counts_match_model():
    spec = ConvolutionSpec.gaussian(9)
    image = np.random.default_rng(0).random((160, 192), dtype=np.float32)
    ssam_convolve2d(image, spec, batch_size="replay")
    derived, model = _check("convolution2d", CONV2D_SSAM_KERNEL,
                            model_convolution2d(spec, 8192, 8192))
    # the paper's headline term: P*M*N mads per thread, exactly
    assert derived.fma == model.fma > 0


def test_stencil2d_counts_match_model():
    spec = get_stencil("2d9pt")
    grid = np.random.default_rng(1).random((160, 192), dtype=np.float32)
    ssam_stencil2d(grid, spec, batch_size="replay")
    derived, model = _check("stencil2d", STENCIL2D_SSAM_KERNEL,
                            model_stencil2d(spec, 8192, 8192))
    assert derived.gmem_load_transactions == model.gmem_load_transactions > 0


def test_stencil3d_counts_match_model():
    spec = get_stencil("3d7pt")
    grid = np.random.default_rng(2).random((24, 40, 64), dtype=np.float32)
    ssam_stencil3d(grid, spec, batch_size="replay")
    _check("stencil3d", STENCIL3D_SSAM_KERNEL,
           model_stencil3d(spec, 512, 512, 512))


def test_conv1d_counts_match_model():
    rng = np.random.default_rng(3)
    taps = rng.random(7).astype(np.float32)
    sequence = rng.random(4096, dtype=np.float32)
    ssam_convolve1d(sequence, taps, batch_size="replay")
    derived, model = _check("convolution1d", CONV1D_SSAM_KERNEL,
                            model_convolution1d(7, 1 << 22))
    # conv1d is fully unmasked: static derivation is exact on every field
    errors = relative_errors(derived, model)
    for field in ("fma", "shfl", "gmem_load", "gmem_store"):
        assert errors[field] == 0.0


def test_scan_counts_match_model():
    sequence = np.random.default_rng(4).random(4096, dtype=np.float32)
    ssam_scan(sequence, batch_size="replay")
    _check("scan", SCAN_SSAM_KERNEL, model_scan(1 << 22))


def test_block_counts_are_grid_independent():
    """The same trace scales exactly: launch = per-block x total_blocks."""
    spec = get_stencil("2d5pt")
    grid = np.random.default_rng(5).random((96, 128), dtype=np.float32)
    ssam_stencil2d(grid, spec, batch_size="replay")
    trace = _trace_of(STENCIL2D_SSAM_KERNEL)
    per_block = block_counts(trace)
    assert per_block.blocks_executed == 1
    scaled = launch_counts(trace, 1000)
    assert scaled.blocks_executed == 1000
    assert scaled.fma == pytest.approx(1000 * per_block.fma)
    assert scaled.warps_executed == 1000 * trace.num_warps


def test_bounds_cover_all_five_kernels():
    assert set(MODEL_AGREEMENT_BOUNDS) == {
        "convolution2d", "stencil2d", "stencil3d", "convolution1d", "scan"}
    for bounds in MODEL_AGREEMENT_BOUNDS.values():
        assert bounds, "every kernel must compare at least one counter"
