"""Correctness and cost-shape tests for the baseline implementations."""

import numpy as np
import pytest

from repro.baselines import (
    ARRAYFIRE_MAX_FILTER,
    arrayfire_like_convolve2d,
    cudnn_like_convolve2d,
    cufft_like_convolve2d,
    halide_like_convolve2d,
    halide_like_stencil2d,
    npp_like_convolve2d,
    original_stencil2d,
    original_stencil3d,
    ppcg_like_stencil2d,
    published_reference,
    reordered_stencil2d,
    shared_stencil3d,
    ssam_temporal_stencil,
    stencilgen_like_stencil,
    unrolled_stencil2d,
)
from repro.baselines.cpu_reference import convolve2d_fft_reference
from repro.convolution.spec import ConvolutionSpec
from repro.errors import ConfigurationError
from repro.stencils.catalog import get_stencil
from repro.workloads import random_grid_3d, random_image

TOL32 = dict(rtol=3e-5, atol=3e-5)


# --- convolution baselines: functional correctness ----------------------------------

@pytest.mark.parametrize("impl", [npp_like_convolve2d, arrayfire_like_convolve2d,
                                  halide_like_convolve2d])
@pytest.mark.parametrize("size", [3, 5, 8])
def test_conv_baselines_match_reference(impl, size):
    spec = ConvolutionSpec.random(size, seed=size)
    image = random_image(73, 49, seed=31)
    result = impl(image, spec, "p100")
    np.testing.assert_allclose(result.output, spec.reference(image), **TOL32)


def test_cudnn_like_output_matches_reference():
    spec = ConvolutionSpec.random(5, seed=2)
    image = random_image(40, 30, seed=32)
    result = cudnn_like_convolve2d(image, spec, "v100")
    np.testing.assert_allclose(result.output, spec.reference(image), rtol=1e-4, atol=1e-4)


def test_cufft_like_matches_reference_in_the_interior():
    spec = ConvolutionSpec.random(5, seed=3)
    image = random_image(64, 64, seed=33)
    result = cufft_like_convolve2d(image, spec, "p100")
    interior = (slice(8, -8), slice(8, -8))
    np.testing.assert_allclose(result.output[interior], spec.reference(image)[interior],
                               rtol=1e-3, atol=1e-3)
    np.testing.assert_allclose(convolve2d_fft_reference(image, spec)[interior],
                               spec.reference(image)[interior], rtol=1e-3, atol=1e-3)


def test_arrayfire_filter_size_limit_enforced():
    spec = ConvolutionSpec.gaussian(17)
    with pytest.raises(ConfigurationError):
        arrayfire_like_convolve2d(random_image(64, 64), spec, "p100")
    assert ARRAYFIRE_MAX_FILTER == 16


def test_analytic_paths_require_dimensions():
    spec = ConvolutionSpec.gaussian(5)
    with pytest.raises(ConfigurationError):
        npp_like_convolve2d(None, spec, functional=False)


# --- convolution baselines: paper-scale cost shape (Figure 4 claims) ------------------

def _fig4_times(architecture, size):
    spec = ConvolutionSpec.gaussian(size)
    kwargs = dict(functional=False, width=8192, height=8192)
    from repro.kernels.conv2d_ssam import analytic_launch

    times = {
        "ssam": analytic_launch(spec, 8192, 8192, architecture).milliseconds,
        "npp": npp_like_convolve2d(None, spec, architecture, **kwargs).milliseconds,
        "halide": halide_like_convolve2d(None, spec, architecture, **kwargs).milliseconds,
        "cudnn": cudnn_like_convolve2d(None, spec, architecture, functional=False,
                                       width=8192, height=8192).milliseconds,
        "cufft": cufft_like_convolve2d(None, spec, architecture, functional=False,
                                       width=8192, height=8192).milliseconds,
    }
    if size <= ARRAYFIRE_MAX_FILTER:
        times["arrayfire"] = arrayfire_like_convolve2d(None, spec, architecture,
                                                       **kwargs).milliseconds
    return times


@pytest.mark.parametrize("architecture", ["p100", "v100"])
@pytest.mark.parametrize("size", [5, 7, 11, 15])
def test_ssam_fastest_direct_method_for_moderate_filters(architecture, size):
    times = _fig4_times(architecture, size)
    assert times["ssam"] <= min(times["npp"], times["cudnn"], times["cufft"])
    assert times["ssam"] <= times["arrayfire"] * 1.05


@pytest.mark.parametrize("architecture", ["p100", "v100"])
def test_small_filters_are_bandwidth_bound_for_every_direct_method(architecture):
    # at 3x3 every direct scheme sits near the DRAM roofline, so the times
    # bunch together (the paper's Figure 4 shows the gap opening with size)
    times = _fig4_times(architecture, 3)
    direct = [times["ssam"], times["npp"], times["arrayfire"], times["halide"]]
    assert max(direct) / min(direct) < 3.0


@pytest.mark.parametrize("architecture", ["p100", "v100"])
def test_npp_substantially_slower_than_ssam_on_average(architecture):
    ratios = []
    for size in (5, 9, 13, 17, 20):
        times = _fig4_times(architecture, size)
        ratios.append(times["npp"] / times["ssam"])
    geomean = np.prod(ratios) ** (1 / len(ratios))
    assert geomean > 1.5  # paper reports ~2.5x on average


def test_cufft_cost_flat_in_filter_size():
    t3 = _fig4_times("p100", 3)["cufft"]
    t20 = _fig4_times("p100", 20)["cufft"]
    assert t3 == pytest.approx(t20, rel=0.01)
    assert t3 > 100.0  # hundreds of milliseconds, as measured in the paper


def test_v100_narrows_the_gap_over_p100():
    # Section 7.1: the Volta cache improvements shrink SSAM's advantage
    p100 = _fig4_times("p100", 9)
    v100 = _fig4_times("v100", 9)
    assert (p100["npp"] / p100["ssam"]) > (v100["npp"] / v100["ssam"])


# --- stencil baselines ------------------------------------------------------------------

@pytest.mark.parametrize("impl", [original_stencil2d, ppcg_like_stencil2d,
                                  halide_like_stencil2d])
@pytest.mark.parametrize("name", ["2d5pt", "2d9pt", "2d25pt"])
def test_stencil2d_baselines_match_reference(impl, name):
    spec = get_stencil(name)
    grid = random_image(69, 47, seed=41)
    result = impl(grid, spec, 2, "p100")
    np.testing.assert_allclose(result.output, spec.reference(grid, 2), **TOL32)


def test_stencil3d_naive_matches_reference():
    spec = get_stencil("3d7pt")
    grid = random_grid_3d(30, 20, 8, seed=42)
    result = original_stencil3d(grid, spec, 2, "v100")
    np.testing.assert_allclose(result.output, spec.reference(grid, 2), **TOL32)


def test_stencil_baselines_reject_wrong_dimensionality():
    with pytest.raises(ConfigurationError):
        original_stencil2d(random_image(16, 16), get_stencil("3d7pt"))
    with pytest.raises(ConfigurationError):
        original_stencil3d(random_grid_3d(8, 8, 8), get_stencil("2d5pt"))


@pytest.mark.parametrize("architecture", ["p100", "v100"])
@pytest.mark.parametrize("precision", ["float32", "float64"])
@pytest.mark.parametrize("name", ["2d5pt", "2d9pt"])
def test_ssam_beats_naive_stencil_at_paper_scale(architecture, precision, name):
    from repro.kernels.stencil2d_ssam import analytic_launch

    spec = get_stencil(name)
    ssam = analytic_launch(spec, 8192, 8192, 1, architecture, precision).seconds
    naive = original_stencil2d(None, spec, 1, architecture, precision, functional=False,
                               width=8192, height=8192).seconds
    assert naive / ssam > 1.3


def test_register_scheme_models_have_higher_register_pressure_for_high_order():
    low = reordered_stencil2d(get_stencil("2d5pt"), 8192, 8192)
    high = reordered_stencil2d(get_stencil("2d121pt"), 8192, 8192)
    assert high.launch.config.registers_per_thread > low.launch.config.registers_per_thread
    assert unrolled_stencil2d(get_stencil("2d5pt"), 8192, 8192).seconds > 0


def test_shared_stencil3d_cost_positive():
    result = shared_stencil3d(get_stencil("3d7pt"), 512, 512, 512)
    assert result.seconds > 0
    assert result.launch.counters.smem_load > 0


# --- temporal blocking (Figure 6) ----------------------------------------------------------

def test_temporal_blocking_beats_single_pass_throughput():
    from repro.kernels.stencil2d_ssam import analytic_launch

    spec = get_stencil("2d5pt")
    cells = 8192 * 8192
    single = analytic_launch(spec, 8192, 8192, 1, "p100").gcells_per_second(cells, 1)
    temporal = ssam_temporal_stencil(spec, 8192, 8192, time_steps=64,
                                     architecture="p100").gcells_per_second(cells, 64)
    assert temporal > 1.5 * single


def test_stencilgen_like_and_ssam_temporal_comparable():
    spec = get_stencil("2d5pt")
    cells = 8192 * 8192
    sg = stencilgen_like_stencil(spec, 8192, 8192, time_steps=64,
                                 architecture="p100").gcells_per_second(cells, 64)
    ss = ssam_temporal_stencil(spec, 8192, 8192, time_steps=64,
                               architecture="p100").gcells_per_second(cells, 64)
    assert 0.4 < ss / sg < 5.0


def test_published_reference_values():
    assert published_reference("diffusion", "p100", "float32") == pytest.approx(92.7)
    assert published_reference("bricks", "v100", "float32") is None
    assert published_reference("unknown", "p100") is None


def test_temporal_depth_validation():
    with pytest.raises(ConfigurationError):
        stencilgen_like_stencil(get_stencil("2d5pt"), 512, 512, temporal_depth=0)
