"""Counter-oracle property tests for the memory-system accounting.

Seeded-random address streams are replayed through both execution engines
(the legacy per-block :class:`~repro.gpu.block.BlockContext` and the
vectorised :class:`~repro.gpu.batch.BatchedBlockContext`) and the counted
quantities are checked against deliberately brute-force Python oracles:

* per-warp coalescing sectors (``gmem_load_transactions`` /
  ``gmem_store_transactions``),
* per-block unique-line DRAM read traffic (``dram_read_bytes``),
* shared-memory bank conflicts / broadcasts (``smem_bank_conflicts``,
  ``smem_load``, ``smem_broadcast``).

The oracles use nothing but Python sets/dicts and loops, so any bug in the
segmented NumPy accounting paths shows up as a disagreement; additionally
the two engines are cross-validated counter-for-counter.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dtypes import resolve_precision
from repro.gpu.architecture import get_architecture
from repro.gpu.batch import BatchedBlockContext
from repro.gpu.block import BlockContext
from repro.gpu.counters import KernelCounters
from repro.gpu.memory import GlobalMemory

WARP_SIZE = 32
LINE_BYTES = 128
BLOCK_THREADS = 64
NUM_BLOCKS = 3
NUM_ACCESSES = 4
BUFFER_ELEMENTS = 4096
SMEM_ELEMENTS = 256


# ----------------------------------------------------------------- oracles

def oracle_sectors(active_indices, itemsize, line_bytes=LINE_BYTES):
    """Brute force: distinct memory sectors touched by one warp access."""
    return len({(int(i) * itemsize) // line_bytes for i in active_indices})


def oracle_warp_sectors(indices, mask, itemsize):
    """Total sectors for one block-wide access, warp by warp."""
    total = 0
    for w in range(0, len(indices), WARP_SIZE):
        lanes = range(w, w + WARP_SIZE)
        active = [indices[i] for i in lanes if mask is None or mask[i]]
        if active:
            total += oracle_sectors(active, itemsize)
    return total


def oracle_unique_line_bytes(reads, itemsize, line_bytes=LINE_BYTES):
    """Brute force: per-block unique-line DRAM bytes for a list of reads
    (each a ``(indices, mask)`` pair) against a single buffer."""
    lines = set()
    for indices, mask in reads:
        for i, idx in enumerate(indices):
            if mask is None or mask[i]:
                lines.add((int(idx) * itemsize) // line_bytes)
    return len(lines) * line_bytes


def oracle_bank_degree(active_indices, itemsize, banks=32, bank_bytes=4):
    """Brute force bank-conflict degree of one warp shared-memory access.

    Returns ``(degree, is_broadcast)`` exactly as the simulator defines
    them: all active lanes on one address is a broadcast; otherwise the
    degree is the worst per-bank count of *distinct* addresses, where
    8-byte elements occupy two consecutive banks.
    """
    addresses = sorted({int(i) * itemsize for i in active_indices})
    if len(addresses) == 1:
        return 1, True
    words_per_element = max(1, itemsize // bank_bytes)
    degree = 1
    for sub in range(words_per_element):
        per_bank = {}
        for address in addresses:
            bank = (address // bank_bytes + sub) % banks
            per_bank[bank] = per_bank.get(bank, 0) + 1
        degree = max(degree, max(per_bank.values()))
    return degree, False


def oracle_smem_counts(accesses, itemsize, is_store):
    """Brute force (loads_or_stores, broadcasts, conflicts) for a list of
    block-wide shared accesses (``(indices, mask)`` pairs)."""
    ops = broadcasts = conflicts = 0
    for indices, mask in accesses:
        for w in range(0, len(indices), WARP_SIZE):
            lanes = range(w, w + WARP_SIZE)
            active = [indices[i] for i in lanes if mask is None or mask[i]]
            if not active:
                continue
            degree, broadcast = oracle_bank_degree(active, itemsize)
            if broadcast and not is_store:
                broadcasts += 1
            else:
                ops += degree
                conflicts += degree - 1
    return ops, broadcasts, conflicts


# ----------------------------------------------------------------- drivers

def _stream(rng, high, mask_mode):
    """One seeded block-wide address stream plus an optional lane mask."""
    indices = rng.integers(0, high, size=BLOCK_THREADS, dtype=np.int64)
    if mask_mode == "none":
        return indices, None
    mask = rng.random(BLOCK_THREADS) < 0.7
    if mask_mode == "dead-warp":
        mask[:WARP_SIZE] = False  # a fully inactive warp must count nothing
    return indices, mask


def _make_streams(seed, high, patterns=("random",)):
    """Per-block access streams: ``streams[a][b] = (indices, mask)``."""
    rng = np.random.default_rng(seed)
    streams = []
    for access in range(NUM_ACCESSES):
        mask_mode = ("none", "random", "dead-warp")[access % 3]
        per_block = [_stream(rng, high, mask_mode) for _ in range(NUM_BLOCKS)]
        streams.append(per_block)
    if "contiguous" in patterns:
        base = np.arange(BLOCK_THREADS, dtype=np.int64)
        streams.append([(base, None) for _ in range(NUM_BLOCKS)])
    if "broadcast" in patterns:
        streams.append([(np.full(BLOCK_THREADS, 7, dtype=np.int64), None)
                        for _ in range(NUM_BLOCKS)])
    if "strided" in patterns:
        strided = (np.arange(BLOCK_THREADS, dtype=np.int64) * 2) % high
        streams.append([(strided, None) for _ in range(NUM_BLOCKS)])
    return streams


def _legacy_contexts(arch, counters, precision):
    return [
        BlockContext(block_idx=(b, 0, 0), grid_dim=(NUM_BLOCKS, 1, 1),
                     block_threads=BLOCK_THREADS, architecture=arch,
                     counters=counters, precision=precision)
        for b in range(NUM_BLOCKS)
    ]


def _batched_context(arch, counters, precision):
    block_indices = np.array([(b, 0, 0) for b in range(NUM_BLOCKS)], dtype=np.int64)
    return BatchedBlockContext(block_indices=block_indices,
                               grid_dim=(NUM_BLOCKS, 1, 1),
                               block_threads=BLOCK_THREADS, architecture=arch,
                               counters=counters, precision=precision)


def _batch_matrix(per_block, pick):
    return np.stack([pick(entry) for entry in per_block])


def _run_global(engine, arch, precision, streams, store=False):
    """Replay the streams through one engine; returns the counters."""
    counters = KernelCounters()
    memory = GlobalMemory()
    buffer = memory.allocate((BUFFER_ELEMENTS,), precision, name="g")
    if engine == "legacy":
        contexts = _legacy_contexts(arch, counters, precision)
        for per_block in streams:
            for ctx, (indices, mask) in zip(contexts, per_block):
                if store:
                    ctx.store_global(buffer, indices, np.float64(1.0), mask=mask)
                else:
                    ctx.load_global(buffer, indices, mask=mask)
        for ctx in contexts:
            ctx.finalize()
    else:
        ctx = _batched_context(arch, counters, precision)
        for per_block in streams:
            indices = _batch_matrix(per_block, lambda e: e[0])
            masks = [mask for _, mask in per_block]
            mask = None if masks[0] is None else np.stack(masks)
            if store:
                ctx.store_global(buffer, indices, np.float64(1.0), mask=mask)
            else:
                ctx.load_global(buffer, indices, mask=mask)
        ctx.finalize()
    return counters


def _run_shared(engine, arch, precision, streams, store=False):
    counters = KernelCounters()
    if engine == "legacy":
        contexts = _legacy_contexts(arch, counters, precision)
        shared = [ctx.alloc_shared("s", (SMEM_ELEMENTS,)) for ctx in contexts]
        for per_block in streams:
            for ctx, smem, (indices, mask) in zip(contexts, shared, per_block):
                if store:
                    ctx.store_shared(smem, indices, np.float64(1.0), mask=mask)
                else:
                    ctx.load_shared(smem, indices, mask=mask)
    else:
        ctx = _batched_context(arch, counters, precision)
        smem = ctx.alloc_shared("s", (SMEM_ELEMENTS,))
        for per_block in streams:
            indices = _batch_matrix(per_block, lambda e: e[0])
            masks = [mask for _, mask in per_block]
            mask = None if masks[0] is None else np.stack(masks)
            if store:
                ctx.store_shared(smem, indices, np.float64(1.0), mask=mask)
            else:
                ctx.load_shared(smem, indices, mask=mask)
    return counters


ENGINES = ("legacy", "batched")
SEEDS = (0, 1, 2)


# ------------------------------------------------------------------- tests

@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("precision_name", ["float32", "float64"])
def test_coalescing_sectors_match_oracle(engine, seed, precision_name):
    arch = get_architecture("p100")
    precision = resolve_precision(precision_name)
    itemsize = precision.itemsize
    streams = _make_streams(seed, BUFFER_ELEMENTS,
                            patterns=("contiguous", "strided"))
    counters = _run_global(engine, arch, precision, streams)
    expected = sum(
        oracle_warp_sectors(list(indices), mask, itemsize)
        for per_block in streams for indices, mask in per_block
    )
    assert counters.gmem_load_transactions == expected
    # a fully coalesced float32 warp access is exactly one 128-byte sector
    if precision_name == "float32":
        solo = KernelCounters()
        ctx = BlockContext((0, 0, 0), (1, 1, 1), BLOCK_THREADS, arch, solo, precision)
        memory = GlobalMemory()
        buffer = memory.allocate((BUFFER_ELEMENTS,), precision)
        ctx.load_global(buffer, np.arange(BLOCK_THREADS, dtype=np.int64))
        assert solo.gmem_load_transactions == BLOCK_THREADS // WARP_SIZE


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", SEEDS)
def test_store_sectors_match_oracle(engine, seed):
    arch = get_architecture("v100")
    precision = resolve_precision("float32")
    streams = _make_streams(seed, BUFFER_ELEMENTS)
    counters = _run_global(engine, arch, precision, streams, store=True)
    expected = sum(
        oracle_warp_sectors(list(indices), mask, precision.itemsize)
        for per_block in streams for indices, mask in per_block
    )
    assert counters.gmem_store_transactions == expected
    active = sum(
        (len(indices) if mask is None else int(np.sum(mask)))
        for per_block in streams for indices, mask in per_block
    )
    assert counters.dram_write_bytes == active * precision.itemsize


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("precision_name", ["float32", "float64"])
def test_unique_line_dram_traffic_matches_oracle(engine, seed, precision_name):
    arch = get_architecture("p100")
    precision = resolve_precision(precision_name)
    streams = _make_streams(seed, BUFFER_ELEMENTS)
    counters = _run_global(engine, arch, precision, streams)
    expected = sum(
        oracle_unique_line_bytes(
            [(list(per_block[b][0]), per_block[b][1]) for per_block in streams],
            precision.itemsize)
        for b in range(NUM_BLOCKS)
    )
    assert counters.dram_read_bytes == expected


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("precision_name", ["float32", "float64"])
def test_bank_conflicts_match_oracle(engine, seed, precision_name):
    arch = get_architecture("p100")
    precision = resolve_precision(precision_name)
    itemsize = precision.itemsize
    streams = _make_streams(seed, SMEM_ELEMENTS,
                            patterns=("contiguous", "broadcast", "strided"))
    counters = _run_shared(engine, arch, precision, streams)
    flat = [(list(indices), mask)
            for per_block in streams for indices, mask in per_block]
    loads, broadcasts, conflicts = oracle_smem_counts(flat, itemsize, is_store=False)
    assert counters.smem_load == loads
    assert counters.smem_broadcast == broadcasts
    assert counters.smem_bank_conflicts == conflicts


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", SEEDS)
def test_bank_conflicts_on_stores_match_oracle(engine, seed):
    arch = get_architecture("v100")
    precision = resolve_precision("float64")
    streams = _make_streams(seed, SMEM_ELEMENTS, patterns=("strided",))
    counters = _run_shared(engine, arch, precision, streams, store=True)
    flat = [(list(indices), mask)
            for per_block in streams for indices, mask in per_block]
    stores, _, conflicts = oracle_smem_counts(flat, precision.itemsize, is_store=True)
    assert counters.smem_store == stores
    assert counters.smem_bank_conflicts == conflicts


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("precision_name", ["float32", "float64"])
def test_engines_agree_counter_for_counter(seed, precision_name):
    """The legacy and batched engines must agree on every counter."""
    arch = get_architecture("p100")
    precision = resolve_precision(precision_name)
    gstreams = _make_streams(seed, BUFFER_ELEMENTS,
                             patterns=("contiguous", "strided"))
    sstreams = _make_streams(seed + 100, SMEM_ELEMENTS,
                             patterns=("broadcast", "strided"))
    for runner, streams in ((_run_global, gstreams), (_run_shared, sstreams)):
        legacy = runner("legacy", arch, precision, streams)
        batched = runner("batched", arch, precision, streams)
        assert legacy.as_dict() == batched.as_dict()
