"""Tests for the launch-configuration autotuner (design space + tuner).

Covers the space pre-filtering invariants, the two-stage pipeline's
determinism across worker counts and cache states, the acceptance property
that the best-found configuration never predicts slower than the paper's
default, and a golden ``--quick`` tune report fixture (regenerate with
``SSAM_UPDATE_GOLDENS=1``).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.errors import ConfigurationError
from repro.experiments.cache import SimulationCache
from repro.scenarios import get_scenario
from repro.tuning import (
    FULL_SPACE,
    PAPER_DEFAULT,
    QUICK_SPACE,
    DesignSpace,
    paper_default_for,
    point_is_valid,
    valid_points,
)
from repro.tuning.tuner import render, run_tuning, tune_cells

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


# ------------------------------------------------------------- design space

def test_space_candidates_project_onto_the_tunable_envelope():
    space = DesignSpace(outputs_per_thread=(4, 2), block_threads=(256, 128))
    both = space.candidates(("outputs_per_thread", "block_threads"))
    assert len(both) == 4
    assert {"outputs_per_thread": 2, "block_threads": 128} in both
    # a B-only kernel sees each block size exactly once, with no P axis
    b_only = space.candidates(("block_threads",))
    assert b_only == [{"block_threads": 128}, {"block_threads": 256}]
    assert space.candidates(()) == [{}]
    with pytest.raises(ConfigurationError):
        DesignSpace(outputs_per_thread=(), block_threads=(128,))


def test_invalid_block_sizes_are_filtered_out():
    conv2d = get_scenario("conv2d")
    bad = DesignSpace(outputs_per_thread=(4,), block_threads=(100, 2048, 128))
    points = valid_points(conv2d, "tiny", "p100", "float32", bad)
    # 100 (not a warp multiple) and 2048 (over the limit) are dropped
    assert points == [{"block_threads": 128, "outputs_per_thread": 4}]
    assert not point_is_valid(conv2d, "tiny", "p100", "float32",
                              {"outputs_per_thread": 4, "block_threads": 100})


def test_clamped_register_requests_are_filtered_out():
    """A P that the register budget clamps resolves to the same plan as the
    smaller request, so the space must not enumerate it twice."""
    conv2d = get_scenario("conv2d")
    huge = DesignSpace(outputs_per_thread=(4, 64), block_threads=(128,))
    points = valid_points(conv2d, "tiny", "p100", "float64", huge)
    assert {"outputs_per_thread": 64, "block_threads": 128} not in points
    assert {"outputs_per_thread": 4, "block_threads": 128} in points


def test_paper_default_is_always_part_of_the_evaluated_set():
    for name in ("conv1d", "conv2d", "stencil2d", "stencil3d", "scan"):
        scenario = get_scenario(name)
        default = paper_default_for(scenario)
        assert set(default) == set(scenario.tunables) & set(PAPER_DEFAULT)
        # even a space that does not contain the default must evaluate it
        narrow = DesignSpace(outputs_per_thread=(8,), block_threads=(512,))
        points = valid_points(scenario, "tiny", "p100", "float32", narrow)
        assert default in points


def test_full_space_is_the_section_7_1_grid():
    assert FULL_SPACE.outputs_per_thread == (1, 2, 3, 4, 5, 6, 7, 8)
    assert FULL_SPACE.block_threads == (64, 128, 256, 512)
    assert FULL_SPACE.size == 32
    assert QUICK_SPACE.size == 4


# ------------------------------------------------------------------- tuner

TUNED_KERNELS = ("conv1d", "conv2d", "stencil2d", "stencil3d", "scan",
                 "stencil2d-order4", "stencil2d-order6", "stencil2d-varcoef",
                 "stencil2d-masked", "conv2d-pipeline")
TUNED_ARCHITECTURES = ("p100", "v100", "a100", "h100")


def test_tune_cells_cover_the_paper_matrix():
    cells = tune_cells()
    ids = [cell.cell_id for cell in cells]
    # 10 kernels x 4 architectures x 2 precisions
    assert len(ids) == 80
    for kernel in TUNED_KERNELS:
        for arch in TUNED_ARCHITECTURES:
            for prec in ("float32", "float64"):
                assert f"{kernel}:{arch}:{prec}" in ids
    with pytest.raises(ConfigurationError):
        tune_cells(scenarios=["conv2d-npp"])  # baselines declare no tunables


@pytest.fixture(scope="module")
def quick_tuning(tmp_path_factory):
    """One quick tune through the cached pipeline: cold, warm and sharded."""
    cache = SimulationCache(str(tmp_path_factory.mktemp("tune-cache")))
    cold = run_tuning(quick=True, workers=1, cache=cache)
    assert cache.misses > 0 and cache.hits == 0

    warm_cache = SimulationCache(cache.directory)
    warm = run_tuning(quick=True, workers=1, cache=warm_cache)
    # the warm rerun is 100% cache hits across both stages
    assert warm_cache.misses == 0 and warm_cache.hits == cache.misses

    sharded_cache = SimulationCache(str(tmp_path_factory.mktemp("tune-cache-p")))
    sharded = run_tuning(quick=True, workers=3, cache=sharded_cache)
    return cold, warm, sharded


def test_quick_tune_is_deterministic_across_workers_and_cache(quick_tuning):
    cold, warm, sharded = quick_tuning
    assert warm == cold
    assert sharded == cold
    assert render(sharded) == render(cold)


def test_best_found_never_predicts_slower_than_the_paper_default(quick_tuning):
    cold, _, _ = quick_tuning
    assert len(cold.measurements) == 80
    for measurement in cold.measurements:
        extra = measurement.extra
        assert extra["best_model_ms"] <= extra["default_model_ms"], extra["cell_id"]
        assert extra["model_speedup"] >= 1.0
        assert extra["points"] >= 1


def test_model_and_simulator_agree_on_an_unambiguous_space(tmp_path):
    """On a space where the ranking is clear-cut (P=4 vs the reuse-free
    P=1), the model stage's winner must also win the batched confirmation."""
    cache = SimulationCache(str(tmp_path / "c"))
    result = run_tuning(scenarios=["conv2d"], architectures=["p100"],
                        precisions=["float32"],
                        space=DesignSpace(outputs_per_thread=(1, 4),
                                          block_threads=(128,)),
                        confirm_size="small", top_k=2, cache=cache)
    (measurement,) = result.measurements
    assert measurement.extra["best"] == "P4,B128"
    assert measurement.extra["confirm_best"] == "P4,B128"
    assert measurement.extra["confirm_agrees"] is True
    (cell,) = result.metadata["cells"]
    # both stages rank the sliding-window configuration first
    assert [row["label"] for row in cell["explored"]][0] == "P4,B128"
    assert [row["label"] for row in cell["confirmed"]][0] == "P4,B128"
    # the confirmation runs are functionally correct, not just fast
    for row in cell["confirmed"]:
        assert row["oracle_max_abs_error"] < 1e-5


def test_replay_confirmation_matches_batched(tmp_path):
    """Confirming on the trace-replay engine reaches the same verdicts.

    Replay counters are bit-identical to batched, so the simulated times —
    and therefore the confirmed ranking — must match exactly; only the
    report's engine label differs.
    """
    kwargs = dict(scenarios=["conv2d"], architectures=["p100"],
                  precisions=["float32"],
                  space=DesignSpace(outputs_per_thread=(1, 4),
                                    block_threads=(128,)),
                  confirm_size="small", top_k=2)
    batched = run_tuning(cache=SimulationCache(str(tmp_path / "b")), **kwargs)
    replay = run_tuning(cache=SimulationCache(str(tmp_path / "r")),
                        confirm_engine="replay", **kwargs)
    (b_cell,) = batched.metadata["cells"]
    (r_cell,) = replay.metadata["cells"]
    assert r_cell["confirmed"] == b_cell["confirmed"]
    assert replay.metadata["confirm_engine"] == "replay"
    assert "engine=replay" in render(replay)
    (measurement,) = replay.measurements
    assert measurement.extra["confirm_agrees"] is True


def test_tune_artifact_round_trips(quick_tuning, tmp_path):
    from repro.experiments.results import load_result

    cold, _, _ = quick_tuning
    path = cold.save(str(tmp_path / "tune.json"))
    assert load_result(path) == cold


# ------------------------------------------------------------------- golden

def test_quick_tune_report_matches_golden(quick_tuning):
    cold, _, _ = quick_tuning
    text = render(cold) + "\n"
    # the golden report pins the post-paper architecture legs too
    assert "conv2d:h100:float32" in text
    assert "stencil2d-masked:a100:float64" in text
    path = GOLDEN_DIR / "tune.txt"
    if os.environ.get("SSAM_UPDATE_GOLDENS"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text, encoding="utf-8")
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"missing golden fixture {path}; regenerate with SSAM_UPDATE_GOLDENS=1")
    assert text == path.read_text(encoding="utf-8"), (
        "quick tune report drifted from its committed golden fixture; "
        "if the change is intentional, regenerate with SSAM_UPDATE_GOLDENS=1")


# ----------------------------------------------------------- search layer

def test_get_strategy_resolves_names_and_instances():
    from repro.tuning import ExhaustiveSearch, GuidedSearch, get_strategy

    assert isinstance(get_strategy("exhaustive"), ExhaustiveSearch)
    assert isinstance(get_strategy("guided"), GuidedSearch)
    custom = GuidedSearch(budget_fraction=0.25)
    assert get_strategy(custom) is custom
    with pytest.raises(ConfigurationError, match="unknown search strategy"):
        get_strategy("simulated-annealing")
    with pytest.raises(ConfigurationError, match="budget_fraction"):
        GuidedSearch(budget_fraction=0.0)


def test_budget_for_caps_large_spaces_and_exhausts_small_ones():
    from repro.tuning import budget_for

    assert budget_for(4) == 4          # at or under the threshold: exhaust
    assert budget_for(8) == 8
    assert budget_for(32) == 12        # floor(0.4 * 32)
    assert budget_for(96) == 38
    assert budget_for(9, budget_fraction=0.1) == 1   # never below one point


def test_session_protocol_rejects_misuse():
    from repro.tuning.search import ExhaustiveSearch, point_key

    points = [{"block_threads": b} for b in (64, 128)]
    session = ExhaustiveSearch().session(points)
    batch = session.propose()
    assert batch == points
    with pytest.raises(ConfigurationError, match="observations outstanding"):
        session.propose()
    with pytest.raises(ConfigurationError, match="no observation"):
        session.observe({point_key(points[0]): 1.0})
    session.observe({point_key(p): float(i) for i, p in enumerate(batch)})
    assert session.propose() == []
    best_point, best_ms = session.best()
    assert (best_point, best_ms) == ({"block_threads": 64}, 0.0)


def test_guided_session_walks_to_the_optimum_within_budget():
    """On a separable landscape, coordinate descent from the paper default
    must reach the global best with far fewer evaluations than the grid."""
    from repro.tuning.search import GuidedSearch, point_key

    space = DesignSpace()          # the 8x4 Section 7.1 grid, 32 points
    points = space.candidates(("outputs_per_thread", "block_threads"))

    def model_ms(point):           # separable bowl, optimum at P=6, B=256
        return ((point["outputs_per_thread"] - 6) ** 2
                + (point["block_threads"] / 256 - 1) ** 2 + 1.0)

    session = GuidedSearch().session(points, seed=PAPER_DEFAULT)
    while True:
        batch = session.propose()
        if not batch:
            break
        session.observe({point_key(p): model_ms(p) for p in batch})
    best_point, _ = session.best()
    assert best_point == {"outputs_per_thread": 6, "block_threads": 256}
    assert session.evaluations <= 12   # floor(0.4 * 32)


def test_guided_budget_smaller_than_first_sweep_still_evaluates_the_seed():
    """When the per-cell budget is smaller than the opening axis sweep, the
    seed leads the batch so truncation can never cut it off — best() then
    always has the (clamped) paper default to fall back on."""
    from repro.tuning.search import GuidedSearch, point_key

    space = DesignSpace()          # 32 points; opening P sweep has 8
    points = space.candidates(("outputs_per_thread", "block_threads"))
    session = GuidedSearch(budget_fraction=4 / 32).session(points,
                                                           seed=PAPER_DEFAULT)
    batch = session.propose()
    assert len(batch) == 4, "the budget caps the opening sweep"
    assert batch[0] == PAPER_DEFAULT, "the seed must survive truncation"
    session.observe({point_key(p): 1.0 for p in batch})
    assert session.propose() == []          # budget exhausted
    assert PAPER_DEFAULT in session.evaluated_points()


def test_guided_matches_the_exhaustive_oracle_on_pinned_cells(tmp_path):
    """Acceptance: on a pinned cell subset the guided search lands on the
    same best configuration as exhaustive enumeration while spending at
    most 40% of its model evaluations."""
    kwargs = dict(scenarios=["conv2d", "stencil2d", "scan"],
                  architectures=["p100", "h100"], precisions=["float32"],
                  confirm=False, cache=None)
    oracle = run_tuning(search="exhaustive", **kwargs)
    guided = run_tuning(search="guided", **kwargs)
    oracle_best = {m.extra["cell_id"]: (m.extra["best"],
                                        m.extra["best_model_ms"])
                   for m in oracle.measurements}
    for measurement in guided.measurements:
        extra = measurement.extra
        assert (extra["best"],
                extra["best_model_ms"]) == oracle_best[extra["cell_id"]]
        if extra["space_points"] > 8:
            assert extra["evaluated"] <= int(0.4 * extra["space_points"])
        else:
            # tiny spaces are exhausted outright — budgeting them adds noise
            assert extra["evaluated"] == extra["space_points"]
    searched = [m.extra for m in guided.measurements
                if m.extra["space_points"] > 8]
    assert searched, "the pinned subset must include searchable spaces"
    assert (sum(e["evaluated"] for e in searched)
            <= 0.4 * sum(e["space_points"] for e in searched))
    assert guided.metadata["search"] == "guided"
    assert "search=guided" in render(guided)


def test_exhaustive_remains_the_default_and_reports_full_coverage():
    result = run_tuning(scenarios=["scan"], architectures=["p100"],
                        precisions=["float32"], confirm=False, cache=None)
    assert result.metadata["search"] == "exhaustive"
    totals = result.metadata["evaluations"]
    assert totals["evaluated"] == totals["space"]


# ------------------------------------------------------ extended space (R)

def test_extended_space_adds_the_block_rows_axis():
    from repro.tuning import EXTENDED_SPACE, canonical_point

    assert EXTENDED_SPACE.block_rows == (1, 2, 4)
    assert EXTENDED_SPACE.size == 8 * 6 * 3
    assert "block_rows" in EXTENDED_SPACE.describe()
    # the classic space never mentions the axis it does not span
    assert "block_rows" not in FULL_SPACE.describe()
    points = EXTENDED_SPACE.candidates(
        ("outputs_per_thread", "block_threads", "block_rows"))
    # R=1 is canonical: never spelled out, so classic points keep their
    # historical identity (case ids, cache keys, plan fingerprints)
    assert {"outputs_per_thread": 4, "block_threads": 128} in points
    assert all("block_rows" not in p or p["block_rows"] > 1 for p in points)
    assert {"outputs_per_thread": 4, "block_threads": 128,
            "block_rows": 2} in points
    assert canonical_point({"block_threads": 128, "block_rows": 1}) == {
        "block_threads": 128}
    # scenarios that do not tune R see the same projection as before
    b_only = EXTENDED_SPACE.candidates(("block_threads",))
    assert all(set(p) == {"block_threads"} for p in b_only)


def test_extended_space_points_are_valid_or_filtered():
    from repro.tuning import EXTENDED_SPACE

    conv2d = get_scenario("conv2d")
    points = valid_points(conv2d, "tiny", "p100", "float32", EXTENDED_SPACE)
    for point in points:
        rows = point.get("block_rows", 1)
        warps = point.get("block_threads", 128) // 32
        assert warps % rows == 0, point


def test_paper_default_clamps_through_the_validity_filter():
    """Where the raw paper default is invalid for a cell, the seed is the
    clamped equivalent — the plan the default would actually build."""
    conv2d = get_scenario("conv2d")
    raw = paper_default_for(conv2d)
    clamped = paper_default_for(conv2d, "tiny", "p100", "float64")
    plan = conv2d.build_plan("tiny", "p100", "float64")
    assert clamped["outputs_per_thread"] == plan.outputs_per_thread
    assert clamped["block_threads"] == raw["block_threads"]
    assert point_is_valid(conv2d, "tiny", "p100", "float64", clamped)


# ------------------------------------------------------ block_rows kernels

def test_block_rows_execution_matches_oracle_and_replay():
    from repro.scenarios.sweep import run_sweep

    matrix = {"scenarios": ["conv2d", "stencil2d"],
              "architectures": ["p100"], "precisions": ["float32"],
              "engines": ["batched", "replay"], "sizes": ["tiny"],
              "plan_kwargs": [{"block_rows": 2}]}
    result = run_sweep(matrix)
    rows = {(m.kernel, m.extra["engine"]): m for m in result.measurements}
    assert len(rows) == 4
    for (scenario, engine), measurement in rows.items():
        assert measurement.extra["oracle_max_abs_error"] < 1e-5, (scenario,
                                                                  engine)
    for scenario in ("conv2d", "stencil2d"):
        batched = rows[(scenario, "batched")]
        replay = rows[(scenario, "replay")]
        # replay counters are bit-identical to batched, so simulated times
        # must match exactly for the banded block shape too
        assert replay.value == batched.value


def test_block_rows_must_divide_the_warp_count():
    conv2d = get_scenario("conv2d")
    bad = {"block_threads": 128, "block_rows": 3}   # 4 warps, 3 bands
    with pytest.raises(ConfigurationError, match="block rows"):
        conv2d.build_plan("tiny", "p100", "float32", plan_kwargs=bad)
    assert not point_is_valid(conv2d, "tiny", "p100", "float32", bad)


# ----------------------------------------------------- tuning database I/O

def test_run_tuning_persists_rows_the_resolver_serves(tmp_path):
    from repro.core.launch_defaults import (
        lookup_tuned_config,
        tuning_database,
    )

    cache = SimulationCache(str(tmp_path / "c"))
    result = run_tuning(scenarios=["conv2d"], architectures=["p100"],
                        precisions=["float32"],
                        space=DesignSpace(outputs_per_thread=(1, 4),
                                          block_threads=(128,)),
                        confirm=False, cache=cache)
    (measurement,) = result.measurements
    with tuning_database(cache.directory):
        found = lookup_tuned_config("conv2d", "p100", "float32")
    assert found is not None
    assert found["plan_kwargs"] == measurement.extra["best_plan_kwargs"]
    assert found["search"] == "exhaustive"
    assert found["model_ms"] == measurement.extra["best_model_ms"]
    # outside the context manager the database is invisible again
    assert lookup_tuned_config("conv2d", "p100", "float32") is None


def test_quick_rerun_never_clobbers_a_full_space_recommendation(tmp_path):
    """A --quick (reduced-space) tune against the same shared cache writes
    its own space-keyed row; the resolver keeps serving the full-space
    best, so planner defaults never silently degrade."""
    from repro.core.launch_defaults import (
        lookup_tuned_config,
        tuning_database,
    )

    cache = SimulationCache(str(tmp_path / "c"))
    kwargs = dict(scenarios=["conv2d"], architectures=["p100"],
                  precisions=["float32"], confirm=False, cache=cache)
    full = run_tuning(**kwargs)
    (full_m,) = full.measurements
    # a degenerate space: only the paper default, so its best can never
    # beat the full grid's
    run_tuning(space=DesignSpace(outputs_per_thread=(4,),
                                 block_threads=(128,)), **kwargs)
    with tuning_database(cache.directory):
        found = lookup_tuned_config("conv2d", "p100", "float32")
    assert found is not None
    assert found["plan_kwargs"] == full_m.extra["best_plan_kwargs"]
    assert found["model_ms"] == full_m.extra["best_model_ms"]
    store = cache.result_store()
    assert store.tuned_config_count() == 2, (
        "the reduced-space run keeps its own row instead of clobbering")


def test_uncached_tuning_runs_persist_nothing(tmp_path):
    result = run_tuning(scenarios=["scan"], architectures=["p100"],
                        precisions=["float32"], confirm=False, cache=None)
    assert len(result.measurements) == 1
    assert not list(tmp_path.iterdir())
