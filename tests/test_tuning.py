"""Tests for the launch-configuration autotuner (design space + tuner).

Covers the space pre-filtering invariants, the two-stage pipeline's
determinism across worker counts and cache states, the acceptance property
that the best-found configuration never predicts slower than the paper's
default, and a golden ``--quick`` tune report fixture (regenerate with
``SSAM_UPDATE_GOLDENS=1``).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.errors import ConfigurationError
from repro.experiments.cache import SimulationCache
from repro.scenarios import get_scenario
from repro.tuning import (
    FULL_SPACE,
    PAPER_DEFAULT,
    QUICK_SPACE,
    DesignSpace,
    paper_default_for,
    point_is_valid,
    valid_points,
)
from repro.tuning.tuner import render, run_tuning, tune_cells

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


# ------------------------------------------------------------- design space

def test_space_candidates_project_onto_the_tunable_envelope():
    space = DesignSpace(outputs_per_thread=(4, 2), block_threads=(256, 128))
    both = space.candidates(("outputs_per_thread", "block_threads"))
    assert len(both) == 4
    assert {"outputs_per_thread": 2, "block_threads": 128} in both
    # a B-only kernel sees each block size exactly once, with no P axis
    b_only = space.candidates(("block_threads",))
    assert b_only == [{"block_threads": 128}, {"block_threads": 256}]
    assert space.candidates(()) == [{}]
    with pytest.raises(ConfigurationError):
        DesignSpace(outputs_per_thread=(), block_threads=(128,))


def test_invalid_block_sizes_are_filtered_out():
    conv2d = get_scenario("conv2d")
    bad = DesignSpace(outputs_per_thread=(4,), block_threads=(100, 2048, 128))
    points = valid_points(conv2d, "tiny", "p100", "float32", bad)
    # 100 (not a warp multiple) and 2048 (over the limit) are dropped
    assert points == [{"block_threads": 128, "outputs_per_thread": 4}]
    assert not point_is_valid(conv2d, "tiny", "p100", "float32",
                              {"outputs_per_thread": 4, "block_threads": 100})


def test_clamped_register_requests_are_filtered_out():
    """A P that the register budget clamps resolves to the same plan as the
    smaller request, so the space must not enumerate it twice."""
    conv2d = get_scenario("conv2d")
    huge = DesignSpace(outputs_per_thread=(4, 64), block_threads=(128,))
    points = valid_points(conv2d, "tiny", "p100", "float64", huge)
    assert {"outputs_per_thread": 64, "block_threads": 128} not in points
    assert {"outputs_per_thread": 4, "block_threads": 128} in points


def test_paper_default_is_always_part_of_the_evaluated_set():
    for name in ("conv1d", "conv2d", "stencil2d", "stencil3d", "scan"):
        scenario = get_scenario(name)
        default = paper_default_for(scenario)
        assert set(default) == set(scenario.tunables) & set(PAPER_DEFAULT)
        # even a space that does not contain the default must evaluate it
        narrow = DesignSpace(outputs_per_thread=(8,), block_threads=(512,))
        points = valid_points(scenario, "tiny", "p100", "float32", narrow)
        assert default in points


def test_full_space_is_the_section_7_1_grid():
    assert FULL_SPACE.outputs_per_thread == (1, 2, 3, 4, 5, 6, 7, 8)
    assert FULL_SPACE.block_threads == (64, 128, 256, 512)
    assert FULL_SPACE.size == 32
    assert QUICK_SPACE.size == 4


# ------------------------------------------------------------------- tuner

TUNED_KERNELS = ("conv1d", "conv2d", "stencil2d", "stencil3d", "scan",
                 "stencil2d-order4", "stencil2d-order6", "stencil2d-varcoef",
                 "stencil2d-masked", "conv2d-pipeline")
TUNED_ARCHITECTURES = ("p100", "v100", "a100", "h100")


def test_tune_cells_cover_the_paper_matrix():
    cells = tune_cells()
    ids = [cell.cell_id for cell in cells]
    # 10 kernels x 4 architectures x 2 precisions
    assert len(ids) == 80
    for kernel in TUNED_KERNELS:
        for arch in TUNED_ARCHITECTURES:
            for prec in ("float32", "float64"):
                assert f"{kernel}:{arch}:{prec}" in ids
    with pytest.raises(ConfigurationError):
        tune_cells(scenarios=["conv2d-npp"])  # baselines declare no tunables


@pytest.fixture(scope="module")
def quick_tuning(tmp_path_factory):
    """One quick tune through the cached pipeline: cold, warm and sharded."""
    cache = SimulationCache(str(tmp_path_factory.mktemp("tune-cache")))
    cold = run_tuning(quick=True, workers=1, cache=cache)
    assert cache.misses > 0 and cache.hits == 0

    warm_cache = SimulationCache(cache.directory)
    warm = run_tuning(quick=True, workers=1, cache=warm_cache)
    # the warm rerun is 100% cache hits across both stages
    assert warm_cache.misses == 0 and warm_cache.hits == cache.misses

    sharded_cache = SimulationCache(str(tmp_path_factory.mktemp("tune-cache-p")))
    sharded = run_tuning(quick=True, workers=3, cache=sharded_cache)
    return cold, warm, sharded


def test_quick_tune_is_deterministic_across_workers_and_cache(quick_tuning):
    cold, warm, sharded = quick_tuning
    assert warm == cold
    assert sharded == cold
    assert render(sharded) == render(cold)


def test_best_found_never_predicts_slower_than_the_paper_default(quick_tuning):
    cold, _, _ = quick_tuning
    assert len(cold.measurements) == 80
    for measurement in cold.measurements:
        extra = measurement.extra
        assert extra["best_model_ms"] <= extra["default_model_ms"], extra["cell_id"]
        assert extra["model_speedup"] >= 1.0
        assert extra["points"] >= 1


def test_model_and_simulator_agree_on_an_unambiguous_space(tmp_path):
    """On a space where the ranking is clear-cut (P=4 vs the reuse-free
    P=1), the model stage's winner must also win the batched confirmation."""
    cache = SimulationCache(str(tmp_path / "c"))
    result = run_tuning(scenarios=["conv2d"], architectures=["p100"],
                        precisions=["float32"],
                        space=DesignSpace(outputs_per_thread=(1, 4),
                                          block_threads=(128,)),
                        confirm_size="small", top_k=2, cache=cache)
    (measurement,) = result.measurements
    assert measurement.extra["best"] == "P4,B128"
    assert measurement.extra["confirm_best"] == "P4,B128"
    assert measurement.extra["confirm_agrees"] is True
    (cell,) = result.metadata["cells"]
    # both stages rank the sliding-window configuration first
    assert [row["label"] for row in cell["explored"]][0] == "P4,B128"
    assert [row["label"] for row in cell["confirmed"]][0] == "P4,B128"
    # the confirmation runs are functionally correct, not just fast
    for row in cell["confirmed"]:
        assert row["oracle_max_abs_error"] < 1e-5


def test_replay_confirmation_matches_batched(tmp_path):
    """Confirming on the trace-replay engine reaches the same verdicts.

    Replay counters are bit-identical to batched, so the simulated times —
    and therefore the confirmed ranking — must match exactly; only the
    report's engine label differs.
    """
    kwargs = dict(scenarios=["conv2d"], architectures=["p100"],
                  precisions=["float32"],
                  space=DesignSpace(outputs_per_thread=(1, 4),
                                    block_threads=(128,)),
                  confirm_size="small", top_k=2)
    batched = run_tuning(cache=SimulationCache(str(tmp_path / "b")), **kwargs)
    replay = run_tuning(cache=SimulationCache(str(tmp_path / "r")),
                        confirm_engine="replay", **kwargs)
    (b_cell,) = batched.metadata["cells"]
    (r_cell,) = replay.metadata["cells"]
    assert r_cell["confirmed"] == b_cell["confirmed"]
    assert replay.metadata["confirm_engine"] == "replay"
    assert "engine=replay" in render(replay)
    (measurement,) = replay.measurements
    assert measurement.extra["confirm_agrees"] is True


def test_tune_artifact_round_trips(quick_tuning, tmp_path):
    from repro.experiments.results import load_result

    cold, _, _ = quick_tuning
    path = cold.save(str(tmp_path / "tune.json"))
    assert load_result(path) == cold


# ------------------------------------------------------------------- golden

def test_quick_tune_report_matches_golden(quick_tuning):
    cold, _, _ = quick_tuning
    text = render(cold) + "\n"
    # the golden report pins the post-paper architecture legs too
    assert "conv2d:h100:float32" in text
    assert "stencil2d-masked:a100:float64" in text
    path = GOLDEN_DIR / "tune.txt"
    if os.environ.get("SSAM_UPDATE_GOLDENS"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text, encoding="utf-8")
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"missing golden fixture {path}; regenerate with SSAM_UPDATE_GOLDENS=1")
    assert text == path.read_text(encoding="utf-8"), (
        "quick tune report drifted from its committed golden fixture; "
        "if the change is intentional, regenerate with SSAM_UPDATE_GOLDENS=1")
