"""Tests for convolution/stencil specifications, the Table 3 catalog and workloads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.ndimage import correlate

from repro.convolution.spec import ConvolutionSpec
from repro.dtypes import FLOAT32, FLOAT64, resolve_precision
from repro.errors import ConfigurationError, SpecificationError
from repro.stencils.catalog import (
    CATALOG,
    DOMAIN_2D,
    DOMAIN_3D,
    FIGURE5_BENCHMARKS,
    FIGURE6_BENCHMARKS,
    get_benchmark,
    get_stencil,
    table3_rows,
)
from repro.stencils.spec import StencilPoint, StencilSpec, box2d, diffusion2d, star2d, star3d
from repro.workloads import (
    checkerboard_image,
    gradient_image,
    hotspot_grid,
    impulse_image,
    random_grid_3d,
    random_image,
    sequence,
)


# --- precision handling -------------------------------------------------------

@pytest.mark.parametrize("alias", ["float32", "fp32", "single", np.float32])
def test_precision_aliases_single(alias):
    assert resolve_precision(alias) is FLOAT32 or resolve_precision(alias).itemsize == 4


@pytest.mark.parametrize("alias", ["float64", "fp64", "double", np.float64])
def test_precision_aliases_double(alias):
    assert resolve_precision(alias).itemsize == 8


def test_precision_rejects_unknown():
    with pytest.raises(ConfigurationError):
        resolve_precision("float16")


def test_precision_register_cost():
    assert FLOAT32.registers_per_value == 1
    assert FLOAT64.registers_per_value == 2


# --- convolution specs -----------------------------------------------------------

def test_convolution_spec_geometry():
    spec = ConvolutionSpec(weights=np.ones((3, 7)))
    assert spec.filter_width == 7 and spec.filter_height == 3
    assert spec.shape == (7, 3)
    assert spec.taps == 21
    assert spec.anchor == (3, 1)
    assert spec.flops_per_output == 41
    np.testing.assert_array_equal(spec.weight_column(2), np.ones(3))


def test_convolution_spec_validation():
    with pytest.raises(SpecificationError):
        ConvolutionSpec(weights=np.ones(5))
    with pytest.raises(SpecificationError):
        ConvolutionSpec(weights=np.ones((3, 3)), boundary="mirror")
    with pytest.raises(SpecificationError):
        ConvolutionSpec(weights=np.ones((3, 3)), anchor=(5, 5))


def test_gaussian_and_box_filters_normalised():
    assert ConvolutionSpec.gaussian(7).weights.sum() == pytest.approx(1.0)
    assert ConvolutionSpec.box(4, 6).weights.sum() == pytest.approx(1.0)
    assert ConvolutionSpec.sobel_x().weights.sum() == pytest.approx(0.0)
    assert ConvolutionSpec.sharpen().weights.sum() == pytest.approx(1.0)


def test_reference_matches_scipy_for_odd_centered_filters():
    rng = np.random.default_rng(0)
    image = rng.standard_normal((40, 37))
    spec = ConvolutionSpec.random(5, seed=3)
    ours = spec.reference(image)
    scipy_result = correlate(image, spec.weights, mode="nearest")
    np.testing.assert_allclose(ours, scipy_result, rtol=1e-10, atol=1e-10)


def test_reference_impulse_recovers_filter():
    spec = ConvolutionSpec.random(3, seed=1)
    image = impulse_image(15, 11)
    out = spec.reference(image.astype(np.float64))
    centre_y, centre_x = 11 // 2, 15 // 2
    # correlation flips the kernel around the impulse
    region = out[centre_y - 1:centre_y + 2, centre_x - 1:centre_x + 2]
    np.testing.assert_allclose(region, spec.weights[::-1, ::-1], atol=1e-12)


@settings(max_examples=25, deadline=None)
@given(width=st.integers(2, 9), height=st.integers(2, 9))
def test_reference_constant_image_invariant(width, height):
    """Property: a normalised filter leaves a constant image unchanged."""
    spec = ConvolutionSpec.box(width, height)
    image = np.full((23, 29), 3.5)
    np.testing.assert_allclose(spec.reference(image), image, rtol=1e-12)


def test_non_square_filters_supported():
    spec = ConvolutionSpec.random(7, 3, seed=9)
    image = random_image(50, 40, seed=4)
    assert spec.reference(image).shape == image.shape


# --- stencil specs ------------------------------------------------------------------

def test_stencil_spec_geometry_2d5pt():
    spec = diffusion2d()
    assert spec.num_points == 5
    assert spec.order == 1
    assert spec.footprint_width == 3 and spec.footprint_height == 3
    assert spec.is_star
    assert sorted(spec.columns().keys()) == [-1, 0, 1]
    assert len(spec.columns()[0]) == 3


def test_stencil_duplicate_offsets_rejected():
    with pytest.raises(SpecificationError):
        StencilSpec(name="dup", points=(StencilPoint(0, 0), StencilPoint(0, 0)), dims=2)


def test_stencil_dims_validation():
    with pytest.raises(SpecificationError):
        StencilSpec(name="bad", points=(StencilPoint(0, 0, 1),), dims=2)
    with pytest.raises(SpecificationError):
        StencilSpec(name="bad", points=(), dims=2)


def test_star_and_box_constructors():
    assert star2d(3).num_points == 13
    assert box2d(2).num_points == 25
    assert box2d(4, asymmetric=True).num_points == 64
    assert star3d(2).num_points == 13


def test_stencil_reference_constant_preserved_by_normalised_weights():
    spec = diffusion2d()
    grid = np.full((30, 40), 7.0)
    np.testing.assert_allclose(spec.reference(grid, iterations=3), grid, rtol=1e-12)


def test_stencil_reference_dimension_check():
    with pytest.raises(SpecificationError):
        diffusion2d().reference(np.zeros((4, 4, 4)))


def test_stencil_to_convolution_equivalence():
    spec = get_stencil("2d9pt")
    conv = spec.to_convolution()
    image = random_image(33, 29, seed=8).astype(np.float64)
    np.testing.assert_allclose(spec.reference(image), conv.reference(image), rtol=1e-10)


def test_out_of_plane_points_for_3d():
    spec = get_stencil("3d7pt")
    assert len(spec.out_of_plane_points()) == 2
    assert len(spec.columns()) == 3


# --- Table 3 catalog --------------------------------------------------------------------

def test_catalog_contains_all_fifteen_benchmarks():
    # the 15 Table 3 rows plus the post-paper variable-coefficient entry
    assert len(CATALOG) == 16
    assert set(FIGURE5_BENCHMARKS).issubset(CATALOG)
    assert set(FIGURE6_BENCHMARKS).issubset(CATALOG)
    assert "2dv9pt" not in FIGURE5_BENCHMARKS  # paper figures stay paper-only


def test_varcoef_benchmark_has_distinct_coefficients():
    from repro.stencils.catalog import get_stencil

    spec = get_stencil("2dv9pt")
    coefficients = [p.coefficient for p in spec.points]
    assert len(set(coefficients)) == len(coefficients)
    assert sum(coefficients) == pytest.approx(1.0)
    assert spec.footprint_width == 3 and spec.footprint_height == 3


@pytest.mark.parametrize("name, k, fpp", [
    ("2d5pt", 1, 9), ("2d9pt", 2, 17), ("2d13pt", 3, 25), ("2d17pt", 4, 33),
    ("2d21pt", 5, 41), ("2ds25pt", 6, 49), ("2d25pt", 2, 33), ("2d64pt", 4, 73),
    ("2d81pt", 4, 95), ("2d121pt", 5, 241), ("3d7pt", 1, 13), ("3d13pt", 2, 25),
    ("3d27pt", 1, 30), ("3d125pt", 2, 130), ("poisson", 1, 21),
])
def test_table3_metadata(name, k, fpp):
    bench = get_benchmark(name)
    assert bench.order == k
    assert bench.flops_per_point == fpp


@pytest.mark.parametrize("name, points", [
    ("2d5pt", 5), ("2d9pt", 9), ("2d13pt", 13), ("2d17pt", 17), ("2d21pt", 21),
    ("2ds25pt", 25), ("2d25pt", 25), ("2d64pt", 64), ("2d81pt", 81), ("2d121pt", 121),
    ("3d7pt", 7), ("3d13pt", 13), ("3d27pt", 27), ("3d125pt", 125),
])
def test_benchmark_point_counts_match_names(name, points):
    assert get_benchmark(name).spec.num_points == points


def test_benchmark_domains():
    assert get_benchmark("2d5pt").domain == DOMAIN_2D
    assert get_benchmark("3d7pt").domain == DOMAIN_3D
    assert get_benchmark("3d7pt").cells == 512 ** 3


def test_table3_rows_order_and_lookup_error():
    rows = table3_rows()
    assert rows[0]["benchmark"] == "2d5pt" and rows[-1]["benchmark"] == "poisson"
    with pytest.raises(SpecificationError):
        get_benchmark("2d99pt")


# --- workload generators ----------------------------------------------------------------

def test_random_image_deterministic_and_typed():
    a = random_image(16, 8, seed=3)
    b = random_image(16, 8, seed=3)
    np.testing.assert_array_equal(a, b)
    assert a.shape == (8, 16) and a.dtype == np.float32


def test_random_grid_3d_shape():
    grid = random_grid_3d(6, 5, 4, precision="float64")
    assert grid.shape == (4, 5, 6) and grid.dtype == np.float64


def test_pattern_generators():
    assert gradient_image(10, 10)[0, 0] == 0.0
    assert set(np.unique(checkerboard_image(8, 8, tile=4))) == {0.0, 1.0}
    hot = hotspot_grid(12, 12, peak=50.0)
    assert hot.max() == 50.0 and hot.min() == 0.0
    assert hotspot_grid(8, 8, depth=8).ndim == 3
    assert sequence(10).shape == (10,)


def test_generators_validate_arguments():
    with pytest.raises(ConfigurationError):
        random_image(0, 5)
    with pytest.raises(ConfigurationError):
        sequence(0)
    with pytest.raises(ConfigurationError):
        checkerboard_image(4, 4, tile=0)
