"""Tests for the trace-IR static verifier (repro.analysis).

Covers the fixture-kernel acceptance gate — each deliberately planted
defect is flagged with the right category and located at the right phase
and access node — the all-scenarios-clean gate over the registry, the
static-vs-dynamic counter cross-check, the dynamic race-checking
confirmation mode, and the analyze experiment surface (CLI result, golden
report, store + daemon endpoint).
"""

from __future__ import annotations

import os
import pathlib

import pytest

import repro.scenarios.builtin  # noqa: F401  (populate the registry)
from repro.analysis.ranges import Interval
from repro.analysis.report import BOUNDS, COVERAGE, DIVERGENCE, ERROR, PERF, RACE, WARNING
from repro.analysis.scenario import analyze_scenario, render, run_analyze, supports_analysis
from repro.analysis.verify import verify_trace
from repro.errors import SimulationError
from repro.gpu.check import SharedMemoryRaceError, shared_race_checking
from repro.scenarios.registry import all_scenarios

from fixtures_kernels import (
    build_fixed_stencil,
    build_oob_conv,
    build_racy_stencil,
    build_strided_scan,
    record_fixture_trace,
)

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def _verify_fixture(builder, **kwargs):
    kernel, config, args = builder()
    trace, chunk, counters = record_fixture_trace(kernel, config, args,
                                                  **kwargs)
    return verify_trace(trace, config.grid_dim, "p100", chunk_blocks=chunk,
                        dynamic_counters=counters,
                        kernel_name=kernel.name), trace


# ------------------------------------------------------------ interval sanity

def test_interval_basics():
    a = Interval(0, 10)
    b = Interval(5, 20)
    assert a.overlaps(b)
    assert a.intersect(b).to_tuple() == (5.0, 10.0)
    assert a.hull(b).to_tuple() == (0.0, 20.0)
    assert Interval(3, 1).empty
    assert not a.contains(11)


# ------------------------------------------------------------ fixture kernels

def test_racy_stencil_is_flagged_as_race_with_location():
    report, trace = _verify_fixture(build_racy_stencil)
    races = report.by_category().get(RACE)
    assert races, report.render()
    finding = next(f for f in report.findings if f.category == RACE)
    assert finding.severity == ERROR
    assert finding.phase == 0, "the missing barrier leaves both accesses in phase 0"
    assert finding.detail["kind"] in ("read-write", "write-read")
    assert trace.nodes[finding.node].op in ("load_shared", "store_shared")
    assert finding.detail["buffer"] == "tile"


def test_fixed_stencil_is_clean():
    report, _ = _verify_fixture(build_fixed_stencil)
    assert report.ok, report.render()
    assert report.phases == 2, "one barrier splits the kernel into two phases"


def test_oob_conv_is_flagged_with_block_and_index():
    # recording block 0 succeeds — the off-by-one halo only trips in the
    # last block, which the static concrete check covers anyway
    report, trace = _verify_fixture(build_oob_conv)
    finding = next(f for f in report.findings if f.category == BOUNDS)
    assert finding.severity == ERROR
    assert trace.nodes[finding.node].op == "load_global"
    assert finding.detail["buffer"] == "src"
    # length = 4 blocks * 64 threads; the violating index is src[length]
    assert finding.detail["index"] == 4 * 64
    assert finding.detail["block"] == 3
    assert finding.detail["thread"] == 63
    # no other defect classes fire
    fired = {k for k, v in report.by_category().items() if v}
    assert fired == {BOUNDS}


def test_oob_conv_dynamic_confirmation():
    """The engine itself faults once the faulty block actually executes."""
    kernel, config, args = build_oob_conv()
    with pytest.raises(SimulationError):
        kernel.launch(config, args, architecture="p100")


def test_strided_scan_is_flagged_as_bank_conflict_lint():
    report, trace = _verify_fixture(build_strided_scan)
    perfs = [f for f in report.findings if f.category == PERF]
    assert perfs, report.render()
    smem = [f for f in perfs if "bank" in f.message]
    assert smem and all(f.severity == WARNING for f in smem)
    assert smem[0].detail["worst_degree"] == 32
    assert trace.nodes[smem[0].node].op in ("load_shared", "store_shared")
    # the lint is advisory: no correctness errors, and the static counter
    # prediction still matches the dynamic engine exactly
    assert not report.errors, report.render()
    assert report.by_category()[DIVERGENCE] == 0


def test_cross_check_flags_counter_divergence():
    kernel, config, args = build_fixed_stencil()
    trace, chunk, counters = record_fixture_trace(kernel, config, args)
    counters = dict(counters)
    counters["smem_load"] += 7.0  # simulate an accounting drift
    report = verify_trace(trace, config.grid_dim, "p100", chunk_blocks=chunk,
                          dynamic_counters=counters, kernel_name=kernel.name)
    divergent = [f for f in report.findings if f.category == DIVERGENCE]
    assert len(divergent) == 1 and divergent[0].severity == ERROR
    assert divergent[0].detail["field"] == "smem_load"


def test_sampled_grids_carry_a_coverage_finding():
    kernel, config, args = build_fixed_stencil()
    trace, _, _ = record_fixture_trace(kernel, config, args)
    report = verify_trace(trace, config.grid_dim, "p100",
                          max_concrete_blocks=2, kernel_name=kernel.name)
    assert not report.full_concrete_coverage
    assert report.by_category()[COVERAGE] > 0


# --------------------------------------------------- dynamic race checking

def test_dynamic_checker_confirms_the_static_race():
    kernel, config, args = build_racy_stencil()
    with shared_race_checking() as checker:
        kernel.launch(config, args, architecture="p100")
    assert checker.events
    event = checker.events[0]
    assert event["kind"] == "read-after-write"
    assert event["shared"] == "tile"
    assert event["phase"] == 0


def test_dynamic_checker_raises_when_not_record_only():
    kernel, config, args = build_racy_stencil()
    with pytest.raises(SharedMemoryRaceError):
        with shared_race_checking(record_only=False):
            kernel.launch(config, args, architecture="p100")


def test_dynamic_checker_is_quiet_on_the_fixed_stencil():
    kernel, config, args = build_fixed_stencil()
    with shared_race_checking() as checker:
        kernel.launch(config, args, architecture="p100")
    assert checker.events == []


def test_dynamic_checker_is_quiet_on_a_real_scenario():
    from repro.scenarios.registry import ScenarioCase, get_scenario

    with shared_race_checking() as checker:
        get_scenario("scan").run_case(
            ScenarioCase("scan", "p100", "float32", "batched", "tiny"))
    assert checker.events == []


# ----------------------------------------------------- the registry gate

@pytest.mark.parametrize("name", [s.name for s in all_scenarios()
                                  if supports_analysis(s)])
def test_every_replay_capable_scenario_verifies_clean(name):
    analysis = analyze_scenario(name)
    assert analysis.ok, analysis.render()
    assert analysis.reports, "at least one trace must be captured"
    for report in analysis.reports:
        assert report.dynamic_counters is not None
        assert report.predicted_counters


def test_scenario_analysis_method_is_the_same_surface():
    from repro.scenarios.registry import get_scenario

    analysis = get_scenario("conv1d").analysis()
    assert analysis.ok and analysis.scenario == "conv1d"


def test_scenario_analysis_round_trips():
    from repro.analysis.scenario import ScenarioAnalysis

    analysis = analyze_scenario("scan")
    clone = ScenarioAnalysis.from_dict(analysis.to_dict())
    assert clone.to_dict() == analysis.to_dict()
    assert clone.ok == analysis.ok


# ------------------------------------------------------- experiment surface

@pytest.fixture(scope="module")
def quick_analyze():
    return run_analyze(quick=True)


def test_quick_analyze_result_shape(quick_analyze):
    result = quick_analyze
    assert result.experiment == "analyze"
    names = {m.kernel for m in result.measurements}
    expected = {s.name for s in all_scenarios() if supports_analysis(s)}
    assert names == expected
    for m in result.measurements:
        assert m.unit == "findings"
        assert m.value == 0.0
        assert m.extra["ok"] is True
        assert m.milliseconds is not None and m.milliseconds > 0


def test_analyze_artifact_round_trips(quick_analyze, tmp_path):
    from repro.experiments.results import load_result

    path = quick_analyze.save(str(tmp_path / "analyze.json"))
    assert load_result(path) == quick_analyze


def test_quick_analyze_report_matches_golden(quick_analyze):
    text = render(quick_analyze) + "\n"
    assert "cells clean" in text
    path = GOLDEN_DIR / "analyze.txt"
    if os.environ.get("SSAM_UPDATE_GOLDENS"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text, encoding="utf-8")
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"missing golden fixture {path}; regenerate with SSAM_UPDATE_GOLDENS=1")
    assert text == path.read_text(encoding="utf-8"), (
        "quick analyze report drifted from its committed golden fixture; "
        "if the change is intentional, regenerate with SSAM_UPDATE_GOLDENS=1")


def test_runner_dispatches_analyze(quick_analyze):
    from repro.experiments import runner

    assert runner.render_result("analyze", quick_analyze) == render(quick_analyze)


# ------------------------------------------------------------ store + daemon

def test_store_analysis_report_round_trip(tmp_path):
    from repro.service.store import ResultStore

    store = ResultStore(str(tmp_path / "store.sqlite"))
    assert store.schema_version() == 4
    analysis = analyze_scenario("scan")
    store.put_analysis_report(analysis.to_dict())
    got = store.get_analysis_report("scan", "p100")
    assert got == analysis.to_dict()
    assert store.get_analysis_report("scan", "v100") is None
    rows = store.list_analysis_reports(current_only=True)
    assert len(rows) == 1 and rows[0]["ok"] is True


def test_store_analysis_report_last_writer_wins(tmp_path):
    from repro.service.store import ResultStore

    store = ResultStore(str(tmp_path / "store.sqlite"))
    analysis = analyze_scenario("scan").to_dict()
    store.put_analysis_report(analysis)
    refreshed = dict(analysis)
    refreshed["fallbacks"] = [{"kernel": "x", "reason": "test refresh"}]
    store.put_analysis_report(refreshed)
    assert store.get_analysis_report("scan", "p100") == refreshed
    assert len(store.list_analysis_reports()) == 1


def test_service_analysis_endpoint_computes_then_serves(tmp_path):
    from repro.experiments.cache import SimulationCache
    from repro.service.daemon import SweepService

    service = SweepService(SimulationCache(str(tmp_path)), threads=1)
    try:
        first = service.analysis("conv1d")
        assert first["source"] == "computed"
        assert first["analysis"]["ok"] is True
        second = service.analysis("conv1d")
        assert second["source"] == "store"
        assert second["analysis"] == first["analysis"]
        index = service.analysis_index()
        assert index["count"] == 1
        assert index["analysis_reports"][0]["scenario"] == "conv1d"
    finally:
        service.shutdown()


# -------------------------------------------------- sweep fallback surfacing

def test_sweep_payload_reports_replay_fallbacks():
    from repro.scenarios.sweep import _measure_case

    payload = _measure_case("scan", "p100", "float32", "replay", "tiny")
    assert payload["replay_fallback"] == []
    batched = _measure_case("scan", "p100", "float32", "batched", "tiny")
    assert "replay_fallback" not in batched


def test_sweep_render_surfaces_fallbacks():
    from repro.experiments.results import ExperimentResult, Measurement
    from repro.scenarios.sweep import render as sweep_render

    measurement = Measurement(
        kernel="scan", architecture="p100", workload="tiny/replay/float32",
        value=1.0, unit="ms", milliseconds=1.0,
        extra={"case_id": "scan:p100:float32:replay:tiny",
               "replay_fallback": [{"kernel": "k", "reason": "because"}]})
    result = ExperimentResult(
        experiment="sweep", title="t", quick=True,
        measurements=[measurement],
        metadata={"scenarios": ["scan"], "sweep_digest": "d"})
    text = sweep_render(result)
    assert "replay fallback: scan:p100:float32:replay:tiny: k: because" in text


def test_capture_records_fallbacks_as_coverage_findings(monkeypatch):
    """An untraceable kernel surfaces as a coverage finding, not silence."""
    from repro.trace.replay import capture_traces, record_fallback

    with capture_traces() as capture:
        record_fallback("fake_kernel", "misc op not traceable")
    assert capture.fallbacks == [
        {"kernel": "fake_kernel", "reason": "misc op not traceable"}]
