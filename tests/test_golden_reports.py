"""Golden-report regression tests.

Committed ``--quick`` report fixtures for all seven experiments, asserted
byte-identical against regeneration through the full job pipeline (cold
cache, then a warm-cache second pass) — the PR-2 determinism promise as a
regression suite.  Regenerate the fixtures after an intentional report
change with::

    SSAM_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_golden_reports.py
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments import runner
from repro.experiments.cache import SimulationCache

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
EXPERIMENT_NAMES = sorted(runner.EXPERIMENTS)


@pytest.fixture(scope="module")
def pipeline_reports(tmp_path_factory):
    """All seven quick reports, rendered twice through the cached pipeline."""
    cache = SimulationCache(str(tmp_path_factory.mktemp("golden-cache")))
    cold = runner.run_experiment_results("all", quick=True, cache=cache)
    texts = {name: runner.render_result(name, result)
             for name, result in cold.items()}
    assert cache.misses > 0 and cache.hits == 0
    # the warm pass must serve every payload from the cache and regenerate
    # every report byte-identically
    warm_cache = SimulationCache(cache.directory)
    warm = runner.run_experiment_results("all", quick=True, cache=warm_cache)
    assert warm_cache.misses == 0 and warm_cache.hits > 0
    assert {name: runner.render_result(name, result)
            for name, result in warm.items()} == texts
    return texts


@pytest.mark.parametrize("name", EXPERIMENT_NAMES)
def test_quick_report_matches_golden(name, pipeline_reports):
    text = pipeline_reports[name] + "\n"
    path = GOLDEN_DIR / f"{name}.txt"
    if os.environ.get("SSAM_UPDATE_GOLDENS"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text, encoding="utf-8")
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"missing golden fixture {path}; regenerate with SSAM_UPDATE_GOLDENS=1")
    assert text == path.read_text(encoding="utf-8"), (
        f"{name} quick report drifted from its committed golden fixture; "
        f"if the change is intentional, regenerate with SSAM_UPDATE_GOLDENS=1")


def test_golden_fixtures_are_committed_for_every_experiment():
    if os.environ.get("SSAM_UPDATE_GOLDENS"):
        pytest.skip("regenerating")
    present = sorted(p.stem for p in GOLDEN_DIR.glob("*.txt"))
    # the tune fixture is produced by tests/test_tuning.py and the analyze
    # fixture by tests/test_static_analysis.py, same protocol
    assert present == sorted(EXPERIMENT_NAMES + ["tune", "analyze"])
