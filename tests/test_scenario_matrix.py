"""The auto-generated differential test matrix.

Nothing in this file names a kernel: every test cell is derived from the
scenario registry's envelopes, so registering a new kernel, architecture or
precision instantly adds its full correctness suite.  Each cell runs the
scenario on both execution engines and checks

* **engine parity** — the batched engine's output is bit-identical to the
  legacy per-block engine's and every counter matches field by field;
* **functional correctness** — both outputs match the scenario's CPU oracle
  to a precision-scaled tolerance.

The SSAM kernels are exercised over their full envelope (every architecture
x both precisions); baselines are thinned to the evaluated architectures at
single precision to bound runtime, but still derive entirely from their
registered envelopes.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

import numpy as np
import pytest

from repro.scenarios import (
    ScenarioCase,
    all_scenarios,
    expand_matrix,
    get_scenario,
)
from repro.scenarios.sweep import load_matrix

#: max absolute error allowed against the float64 CPU oracle
ORACLE_TOLERANCE = {"float32": 1e-4, "float64": 1e-9}

#: the acceptance envelope: every SSAM kernel on the evaluated and the
#: post-paper architectures, both precisions and all functional engines
TIER1_KERNELS = ("conv1d", "conv2d", "stencil2d", "stencil3d", "scan",
                 "stencil2d-order4", "stencil2d-order6", "stencil2d-varcoef",
                 "stencil2d-masked", "conv2d-pipeline")
TIER1_ARCHITECTURES = ("p100", "v100", "a100", "h100")
TIER1_PRECISIONS = ("float32", "float64")
TIER1_ENGINES = ("scalar", "batched", "replay")


def derive_differential_cells() -> List[ScenarioCase]:
    """One cell per (scenario, architecture, precision) with both engines.

    Cells are expanded from the registered envelopes — scenarios without a
    CPU oracle (analytic-only baselines) contribute nothing.  The returned
    case names the batched engine; the test itself also runs the scalar
    engine for the parity check.
    """
    cells: List[ScenarioCase] = []
    for scenario in all_scenarios():
        if scenario.oracle is None:
            continue
        if not {"scalar", "batched"} <= set(scenario.engines):
            continue
        if scenario.role == "ssam":
            architectures = scenario.architectures
            precisions = scenario.precisions
        else:
            architectures = scenario.architectures[:2]
            precisions = scenario.precisions[:1]
        cells.extend(scenario.cases(architectures=architectures,
                                    precisions=precisions,
                                    engines=("batched",),
                                    sizes=("tiny",)))
    return cells


DIFFERENTIAL_CELLS = derive_differential_cells()


def _assert_engine_parity(reference, other, label):
    """Bit-identical outputs and field-by-field identical counters."""
    assert reference.output is not None and other.output is not None
    assert reference.output.dtype == other.output.dtype
    np.testing.assert_array_equal(reference.output, other.output)
    ref_counters = reference.launch.counters.as_dict()
    other_counters = other.launch.counters.as_dict()
    mismatched = {name: (ref_counters[name], other_counters[name])
                  for name in ref_counters
                  if ref_counters[name] != other_counters[name]}
    assert not mismatched, f"{label} counter mismatch: {mismatched}"


@pytest.mark.parametrize("case", DIFFERENTIAL_CELLS, ids=lambda c: c.case_id)
def test_differential_matrix(case):
    scenario = get_scenario(case.scenario)
    scalar = scenario.run_case(replace(case, engine="scalar"))
    batched = scenario.run_case(case)

    # engine parity: scalar vs batched
    _assert_engine_parity(scalar, batched, "scalar/batched")

    # replay parity where the scenario supports the trace-replay engine:
    # run twice so both the cold (record + compile) path and the warm
    # (cached program, memoized counters) path are checked against batched
    if "replay" in scenario.engines:
        cold = scenario.run_case(replace(case, engine="replay"))
        _assert_engine_parity(batched, cold, "batched/replay-cold")
        warm = scenario.run_case(replace(case, engine="replay"))
        _assert_engine_parity(batched, warm, "batched/replay-warm")

    # functional correctness against the CPU oracle
    oracle = np.asarray(scenario.oracle_output(case), dtype=np.float64)
    error = np.max(np.abs(batched.output.astype(np.float64) - oracle))
    assert error <= ORACLE_TOLERANCE[case.precision], (
        f"{case.case_id}: max abs error {error} exceeds "
        f"{ORACLE_TOLERANCE[case.precision]}")


def test_matrix_covers_acceptance_envelope():
    """The derived matrix spans all 10 SSAM kernels x 3 engines x 2
    precisions x >= 4 architectures (each cell runs every engine)."""
    covered = {(c.scenario, c.architecture, c.precision)
               for c in DIFFERENTIAL_CELLS}
    for kernel in TIER1_KERNELS:
        for arch in TIER1_ARCHITECTURES:
            for precision in TIER1_PRECISIONS:
                assert (kernel, arch, precision) in covered
        # every SSAM kernel runs the replay leg of the differential test
        assert "replay" in get_scenario(kernel).engines


def test_tier1_matrix_expands_to_full_envelope():
    """The 'tier1' sweep preset expands to the same acceptance envelope."""
    cases = expand_matrix(load_matrix("tier1"))
    covered = {(c.scenario, c.architecture, c.precision, c.engine)
               for c in cases}
    for kernel in TIER1_KERNELS:
        for arch in TIER1_ARCHITECTURES:
            for precision in TIER1_PRECISIONS:
                for engine in TIER1_ENGINES:
                    assert (kernel, arch, precision, engine) in covered


def test_registering_a_scenario_extends_the_matrix():
    """A new registration is picked up by the derivation with no test edits."""
    from repro.scenarios import register, unregister

    donor = get_scenario("conv1d")
    name = "conv1d-copy-for-test"
    register(replace(donor, name=name))
    try:
        cells = derive_differential_cells()
        assert any(c.scenario == name for c in cells)
    finally:
        unregister(name)
    assert not any(c.scenario == name for c in derive_differential_cells())
