"""Concurrency stress test: many processes hammering one shared store.

Eight real processes execute overlapping windows of the same synthetic
sweep matrix against one store.  The three promises under test:

* **exactly-once execution** — every job key is simulated by exactly one
  process (the others hit the store or wait on the executor claim); the
  proof is an ``O_APPEND`` log every execution writes one line to;
* **no lost or duplicated results** — the final store holds exactly one
  row per key;
* **serial equivalence** — the store's dump (sans writer identity and
  timestamps) is identical to the dump a single serial process produces.
"""

from __future__ import annotations

import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: the synthetic matrix: this many distinct job keys in total
TOTAL_KEYS = 40
#: stress geometry: every process runs a 16-key window starting 4 keys
#: after its predecessor's, so every key is requested by several processes
PROCESSES = 8
WINDOW = 16
STRIDE = 4


def _logged_worker(i: int) -> dict:
    """Executed at most once per key across every process — the append-only
    log is the witness (O_APPEND single-line writes are atomic on Linux).

    The log path rides in the ``STRESS_LOG`` environment variable, not the
    job params: params are part of the cache key, and the serial reference
    run must address byte-identical keys to compare store dumps.
    """
    fd = os.open(os.environ["STRESS_LOG"],
                 os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        os.write(fd, f"executed:{i}\n".encode())
    finally:
        os.close(fd)
    return {"i": i, "value": i * i, "label": f"cell-{i}"}


def _window_jobs(start: int, count: int):
    from repro.experiments.jobs import SimulationJob

    return [
        SimulationJob(
            key=f"stress:{i % TOTAL_KEYS}",
            func="tests.test_store_concurrency:_logged_worker",
            params={"i": i % TOTAL_KEYS},
            cache_fields={"kernel": "stress", "i": i % TOTAL_KEYS},
        )
        for i in range(start, start + count)
    ]


def run_window(cache_dir: str, start: int, count: int) -> None:
    """Subprocess entry: execute one overlapping window against the store."""
    from repro.experiments.cache import SimulationCache
    from repro.experiments.parallel import execute_jobs

    cache = SimulationCache(cache_dir)
    payloads = execute_jobs(_window_jobs(start, count), cache=cache)
    expected = {f"stress:{i % TOTAL_KEYS}" for i in range(start, start + count)}
    assert set(payloads) == expected, "every requested cell must resolve"


def _spawn(cache_dir: str, log_path: str, start: int, count: int):
    code = (f"from tests.test_store_concurrency import run_window; "
            f"run_window({str(cache_dir)!r}, {start}, {count})")
    env = dict(os.environ)
    env["STRESS_LOG"] = log_path
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(REPO_ROOT, "src"), REPO_ROOT]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    return subprocess.Popen([sys.executable, "-c", code], env=env,
                            cwd=REPO_ROOT, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE)


def test_eight_processes_share_the_store_with_exactly_once_execution(tmp_path):
    cache_dir = str(tmp_path / "shared")
    log_path = str(tmp_path / "executions.log")

    procs = [_spawn(cache_dir, log_path, p * STRIDE, WINDOW)
             for p in range(PROCESSES)]
    failures = []
    for proc in procs:
        out, err = proc.communicate(timeout=300)
        if proc.returncode != 0:
            failures.append(err.decode())
    assert not failures, "\n---\n".join(failures)

    # exactly-once: every key executed once, no key executed twice
    with open(log_path, "r", encoding="utf-8") as handle:
        executed = sorted(int(line.split(":")[1])
                          for line in handle if line.strip())
    assert executed == list(range(TOTAL_KEYS)), \
        f"each of the {TOTAL_KEYS} keys must execute exactly once, " \
        f"got {len(executed)} executions"

    # no lost or duplicated rows
    from repro.experiments.cache import SimulationCache

    shared = SimulationCache(cache_dir)
    assert shared.entry_count() == TOTAL_KEYS

    # serial equivalence: one process computing the full matrix produces a
    # byte-identical store state (modulo writer identity and timestamps,
    # which dump() excludes by design)
    from repro.experiments.parallel import execute_jobs

    serial_dir = str(tmp_path / "serial")
    serial = SimulationCache(serial_dir)
    os.environ["STRESS_LOG"] = str(tmp_path / "serial.log")
    try:
        execute_jobs(_window_jobs(0, TOTAL_KEYS), cache=serial)
    finally:
        del os.environ["STRESS_LOG"]

    assert shared.result_store().dump() == serial.result_store().dump()


def test_two_processes_with_identical_windows_dedup_perfectly(tmp_path):
    """The degenerate overlap: both processes want every key."""
    cache_dir = str(tmp_path / "shared")
    log_path = str(tmp_path / "executions.log")
    procs = [_spawn(cache_dir, log_path, 0, TOTAL_KEYS) for _ in range(2)]
    for proc in procs:
        out, err = proc.communicate(timeout=300)
        assert proc.returncode == 0, err.decode()
    with open(log_path, "r", encoding="utf-8") as handle:
        executed = sorted(int(line.split(":")[1]) for line in handle)
    assert executed == list(range(TOTAL_KEYS))
