"""Test configuration.

Makes the ``src`` layout importable even when the package has not been
installed (useful in offline environments where ``pip install -e .`` cannot
build an editable wheel), and provides shared fixtures.
"""

from __future__ import annotations

import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np
import pytest


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Deterministic random generator shared by the test session."""
    return np.random.default_rng(20190617)


@pytest.fixture(params=["p100", "v100"], scope="session")
def architecture_name(request) -> str:
    """Run a test on both evaluated architectures."""
    return request.param
