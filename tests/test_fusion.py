"""Stage fusion: the two-pass blur chain as one software-pipelined launch.

The ISSUE-level acceptance criterion lives here: the fused blur pipeline
runs as a *single* launch (zero ``Kernel.launch`` dispatches — the fused
driver interleaves replay chunks itself) and moves strictly less DRAM
traffic than the two-pass chain, while producing bit-identical output and
identical instruction counts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.convolution.spec import ConvolutionSpec
from repro.errors import LaunchError
from repro.gpu.kernel import Kernel
from repro.kernels.conv2d_ssam import CONV2D_SSAM_KERNEL, ssam_convolve2d_chain
from repro.trace.fusion import FusedStage, fused_launch


@pytest.fixture
def image():
    return np.random.default_rng(7).random((96, 160), dtype=np.float32)


@pytest.fixture
def spec():
    return ConvolutionSpec.gaussian(9)


def test_fused_blur_is_one_launch(image, spec, monkeypatch):
    """The fused pipeline never goes through the per-kernel launch path."""
    calls = []
    original = Kernel.launch

    def counting_launch(self, *args, **kwargs):
        calls.append(self.name)
        return original(self, *args, **kwargs)

    monkeypatch.setattr(Kernel, "launch", counting_launch)

    chain = ssam_convolve2d_chain(image, spec, fused=False)
    assert len(calls) == 2  # the unfused chain: one launch per pass

    calls.clear()
    fused = ssam_convolve2d_chain(image, spec, fused=True)
    assert calls == []  # fused: zero kernel dispatches, one fused launch
    assert fused.launch.kernel_name == "ssam_conv2d+ssam_conv2d"
    # both stages' blocks ran inside the single fused launch
    assert fused.launch.blocks_executed == 2 * chain.launch.blocks_executed / 2


def test_fused_blur_bit_identical_with_less_dram(image, spec):
    chain = ssam_convolve2d_chain(image, spec, fused=False)
    fused = ssam_convolve2d_chain(image, spec, fused=True)

    # bit-identical output: fusion only reorders whole blocks across stages
    np.testing.assert_array_equal(fused.output, chain.output)

    c, f = chain.launch.counters, fused.launch.counters
    # identical work: every instruction counter matches exactly
    for field in ("fma", "add", "mul", "shfl", "gmem_load", "gmem_store",
                  "smem_broadcast", "gmem_load_transactions",
                  "gmem_store_transactions", "blocks_executed"):
        assert getattr(f, field) == getattr(c, field), field

    # strictly less DRAM traffic: the intermediate stays on chip, so its
    # write-out and read-back both disappear
    assert f.dram_write_bytes < c.dram_write_bytes
    assert f.dram_read_bytes < c.dram_read_bytes
    assert f.dram_bytes < c.dram_bytes
    # the intermediate is exactly one image: its write is half the chain's
    assert f.dram_write_bytes == pytest.approx(c.dram_write_bytes / 2)


def test_fused_blur_warm_path_stable(image, spec):
    """A second fused run (warm trace cache) is bit-identical to the first."""
    first = ssam_convolve2d_chain(image, spec, fused=True)
    second = ssam_convolve2d_chain(image, spec, fused=True)
    np.testing.assert_array_equal(first.output, second.output)
    assert second.launch.counters.as_dict() == first.launch.counters.as_dict()


def test_three_pass_chain_fuses(image, spec):
    chain = ssam_convolve2d_chain(image, spec, passes=3, fused=False)
    fused = ssam_convolve2d_chain(image, spec, passes=3, fused=True)
    np.testing.assert_array_equal(fused.output, chain.output)
    c, f = chain.launch.counters, fused.launch.counters
    assert f.fma == c.fma
    # two intermediates stay on chip: write traffic drops to one third
    assert f.dram_write_bytes == pytest.approx(c.dram_write_bytes / 3)


def test_fused_launch_rejects_mismatched_plans(image, spec):
    from repro.core.plan import plan_convolution
    from repro.gpu.architecture import get_architecture
    from repro.gpu.memory import GlobalMemory
    from repro.dtypes import resolve_precision

    arch = get_architecture("p100")
    prec = resolve_precision("float32")
    plan_a = plan_convolution(spec, arch, prec, 4, 128)
    plan_b = plan_convolution(spec, arch, prec, 4, 256)
    height, width = image.shape
    config_a = plan_a.launch_config(width, height)
    config_b = plan_b.launch_config(width, height)

    memory = GlobalMemory()
    src = memory.to_device(image, name="src")
    weights = memory.to_device(spec.weights.astype(np.float32),
                               name="weights", cached=True)
    tmp = memory.allocate((height, width), prec, name="tmp")
    dst = memory.allocate((height, width), prec, name="dst")
    ax, ay = spec.anchor

    def args(a, b, plan):
        return (a, b, weights, width, height, spec.filter_width,
                spec.filter_height, plan.outputs_per_thread, ax, ay)

    with pytest.raises(LaunchError, match="share one blocking plan"):
        fused_launch([
            FusedStage(CONV2D_SSAM_KERNEL, config_a, args(src, tmp, plan_a)),
            FusedStage(CONV2D_SSAM_KERNEL, config_b, args(tmp, dst, plan_b)),
        ])


def test_fused_launch_needs_two_stages(image, spec):
    with pytest.raises(LaunchError, match="at least two stages"):
        fused_launch([])
    with pytest.raises(Exception):
        ssam_convolve2d_chain(image, spec, passes=1)
