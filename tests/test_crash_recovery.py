"""Crash recovery: SIGKILL a worker mid-sweep, restart, resume.

Two layers:

* **executor level** — a subprocess running synthetic logged jobs is
  SIGKILLed partway through; a second pass over the same matrix completes
  it, and the append-only execution log proves the second pass ran *only*
  the cells the store was missing (every cell stored before the kill is
  never executed again);
* **service level** — a subprocess daemon running the real ``tier1`` sweep
  is SIGKILLed mid-run; a fresh :class:`SweepService` resumes the
  checkpointed run, rows stored before the kill keep their original writer
  (never re-published), and the final JSON artifact is byte-identical to
  an uninterrupted run's.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

TOTAL_KEYS = 24


def _slow_worker(i: int) -> dict:
    fd = os.open(os.environ["CRASH_LOG"],
                 os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        os.write(fd, f"executed:{i}\n".encode())
    finally:
        os.close(fd)
    time.sleep(0.05)  # slow enough that the kill lands mid-matrix
    return {"i": i, "value": i * 3}


def _jobs():
    from repro.experiments.jobs import SimulationJob

    return [
        SimulationJob(
            key=f"crash:{i}",
            func="tests.test_crash_recovery:_slow_worker",
            params={"i": i},
            cache_fields={"kernel": "crash", "i": i},
        )
        for i in range(TOTAL_KEYS)
    ]


def run_all(cache_dir: str) -> None:
    """Subprocess entry for the executor-level crash test."""
    from repro.experiments.cache import SimulationCache
    from repro.experiments.parallel import execute_jobs

    execute_jobs(_jobs(), cache=SimulationCache(cache_dir))


def _subprocess_env(**extra: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(REPO_ROOT, "src"), REPO_ROOT]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    env.update(extra)
    return env


def _wait_for_entries(cache_dir: str, minimum: int, timeout: float = 60.0) -> int:
    """Poll the store until it holds at least ``minimum`` rows."""
    from repro.experiments.cache import SimulationCache

    probe = SimulationCache(cache_dir)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        count = probe.entry_count()
        if count >= minimum:
            probe.close()
            return count
        time.sleep(0.02)
    raise AssertionError(f"store never reached {minimum} entries")


def test_sigkill_mid_sweep_resumes_only_the_missing_cells(tmp_path):
    cache_dir = str(tmp_path / "shared")
    log_path = str(tmp_path / "crash.log")

    code = (f"from tests.test_crash_recovery import run_all; "
            f"run_all({cache_dir!r})")
    victim = subprocess.Popen(
        [sys.executable, "-c", code], cwd=REPO_ROOT,
        env=_subprocess_env(CRASH_LOG=log_path),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    _wait_for_entries(cache_dir, 1)
    victim.send_signal(signal.SIGKILL)
    victim.wait(timeout=30)
    assert victim.returncode == -signal.SIGKILL

    from repro.experiments.cache import SimulationCache
    from repro.experiments.parallel import execute_jobs

    survivor = SimulationCache(cache_dir)
    stored_at_kill = {row["key"]["i"] for row in survivor.result_store().dump()}
    assert 0 < len(stored_at_kill) < TOTAL_KEYS, \
        "the kill must land mid-matrix for the test to mean anything"
    kill_offset = os.path.getsize(log_path)

    # second pass over the same matrix: completes, and executes only what
    # the store was missing
    os.environ["CRASH_LOG"] = log_path
    try:
        payloads = execute_jobs(_jobs(), cache=survivor)
    finally:
        del os.environ["CRASH_LOG"]
    assert len(payloads) == TOTAL_KEYS
    assert survivor.entry_count() == TOTAL_KEYS

    with open(log_path, "rb") as handle:
        handle.seek(kill_offset)
        resumed = {int(line.split(b":")[1]) for line in handle if line.strip()}
    missing_at_kill = set(range(TOTAL_KEYS)) - stored_at_kill
    # cells whose execution the kill interrupted before the store-back are
    # missing too, so they legitimately run again; stored cells must not
    assert resumed == missing_at_kill
    assert not (resumed & stored_at_kill), \
        "no cell stored before the kill may execute again"


def serve_tier1(cache_dir: str, marker_path: str) -> None:
    """Subprocess entry for the service-level crash test: submit the real
    tier1 sweep and block until done (the test kills us long before)."""
    from repro.experiments.cache import SimulationCache
    from repro.service.daemon import SweepService

    service = SweepService(SimulationCache(cache_dir), threads=1)
    run = service.submit_sweep("tier1")
    with open(marker_path, "w", encoding="utf-8") as handle:
        json.dump({"run_id": run["run_id"], "pid": os.getpid()}, handle)
    service.wait_for_run(run["run_id"], timeout=600)


def test_killed_daemon_resumes_to_a_byte_identical_artifact(tmp_path):
    # reference: one uninterrupted serve of the same matrix
    from repro.experiments.cache import SimulationCache
    from repro.service.daemon import SweepService

    reference_cache = SimulationCache(str(tmp_path / "reference"))
    reference = SweepService(reference_cache, threads=1)
    ref_run = reference.submit_sweep("tier1")
    reference.wait_for_run(ref_run["run_id"], timeout=600)
    ref_path = str(tmp_path / "reference.json")
    reference.run_results(ref_run["run_id"]).save(ref_path)
    reference.shutdown()
    total = reference.store.run_record(ref_run["run_id"])["total"]

    # victim: same matrix in a subprocess daemon, SIGKILLed mid-run
    cache_dir = str(tmp_path / "victim")
    marker = str(tmp_path / "victim.json")
    code = (f"from tests.test_crash_recovery import serve_tier1; "
            f"serve_tier1({cache_dir!r}, {marker!r})")
    victim = subprocess.Popen([sys.executable, "-c", code], cwd=REPO_ROOT,
                              env=_subprocess_env(), stdout=subprocess.PIPE,
                              stderr=subprocess.PIPE)
    _wait_for_entries(cache_dir, max(2, total // 8))
    victim.send_signal(signal.SIGKILL)
    victim.wait(timeout=30)

    with open(marker, "r", encoding="utf-8") as handle:
        run_id = json.load(handle)["run_id"]

    survivor_cache = SimulationCache(cache_dir)
    store = survivor_cache.result_store()
    rows_at_kill = {row["digest"]: row for row in store.dump()}
    assert 0 < len(rows_at_kill) < total, "kill must land mid-sweep"
    writers_at_kill = {
        r["digest"]: r["writer"] for r in store._conn().execute(
            "SELECT digest, writer FROM results")}

    # the run survived the crash as a checkpoint; resuming completes it
    resumed = SweepService(survivor_cache, threads=1)
    assert run_id in resumed.resume_pending()
    assert resumed.wait_for_run(run_id, timeout=600) == "done"

    # completed cells were never re-published: original writer intact
    writers_after = {
        r["digest"]: r["writer"] for r in store._conn().execute(
            "SELECT digest, writer FROM results")}
    for digest in rows_at_kill:
        assert writers_after[digest] == writers_at_kill[digest]
    own = f"{os.uname().nodename}:{os.getpid()}"
    fresh_rows = set(writers_after) - set(rows_at_kill)
    assert fresh_rows and all(writers_after[d] == own for d in fresh_rows)

    # and the artifact is byte-identical to the uninterrupted run's
    resumed_path = str(tmp_path / "resumed.json")
    resumed.run_results(run_id).save(resumed_path)
    resumed.shutdown()
    with open(ref_path, "rb") as a, open(resumed_path, "rb") as b:
        assert a.read() == b.read()
