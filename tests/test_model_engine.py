"""The Section 5 performance model as an execution engine (``model``).

Covers the three promises the model engine makes:

* every registered scenario evaluates closed-form — paper-scale domains
  included — and emits the same typed records as a simulated launch;
* predictions stay within a sane band of the counted simulation at
  functional sizes (the cross-engine validation experiment reports the
  exact bounds);
* model cells run through the cached/sharded sweep pipeline like any other
  engine, with deterministic artifacts.
"""

from __future__ import annotations


import pytest

from repro.analysis.metrics import error_bounds, geometric_mean, relative_error
from repro.core.performance_model import predict_launch
from repro.errors import ConfigurationError
from repro.experiments import load_result, model_validation, runner
from repro.experiments.cache import SimulationCache
from repro.experiments.parallel import execute_jobs
from repro.gpu.architecture import TESLA_P100
from repro.gpu.kernel import LaunchConfig
from repro.gpu.occupancy import compute_occupancy
from repro.scenarios import ScenarioCase, all_scenarios, get_scenario
from repro.scenarios.sweep import jobs as sweep_jobs
from repro.scenarios.sweep import run_sweep

SSAM_KERNELS = ("conv1d", "conv2d", "stencil2d", "stencil3d", "scan",
                "stencil2d-order4", "stencil2d-order6", "stencil2d-varcoef",
                "stencil2d-masked", "conv2d-pipeline")
#: the evaluated parts plus the post-paper Ampere/Hopper axis
MODEL_ARCHITECTURES = ("p100", "v100", "a100", "h100")


# --- the engine itself ------------------------------------------------------

@pytest.mark.parametrize("name", SSAM_KERNELS)
def test_model_engine_runs_every_ssam_kernel_at_paper_scale(name):
    scenario = get_scenario(name)
    assert "model" in scenario.engines_for("paper")
    result = scenario.run_case(
        ScenarioCase(name, "p100", "float32", "model", "paper"))
    assert result.output is None
    assert result.milliseconds > 0
    assert result.launch.kernel_name.endswith("_model")
    assert result.parameters["engine"] == "model"
    assert result.parameters["scheme"] == "register_cache"
    assert result.parameters["seconds"] == pytest.approx(result.seconds)
    # the launch carries real counters and a real launch configuration
    assert result.launch.counters.fma >= 0
    assert result.launch.config.total_blocks >= 1


def test_every_scenario_evaluates_through_the_model_engine():
    """Baselines included: the model entry is part of every registration."""
    for scenario in all_scenarios():
        size = next(s for s in ("small", "tiny", "paper")
                    if s in scenario.sizes and
                    "model" in scenario.engines_for(s))
        arch = scenario.architectures[0]
        result = scenario.run_case(
            ScenarioCase(scenario.name, arch, "float32", "model", size))
        assert result.milliseconds > 0, scenario.name
        expected_scheme = ("register_cache" if scenario.role == "ssam"
                           else ("naive" if scenario.dims == 3
                                 else "shared_memory"))
        assert result.parameters["scheme"] == expected_scheme, scenario.name


def test_predict_launch_occupancy_matches_the_calculator():
    config = LaunchConfig(grid_dim=(1000, 1, 1), block_threads=128,
                          registers_per_thread=64,
                          shared_bytes_per_block=2048)
    prediction = predict_launch(TESLA_P100, config, scheme="register_cache",
                                outputs=10**6, warp_passes=4000,
                                compute_cycles_per_pass=1000.0,
                                memory_cycles_per_pass=400.0)
    occ = compute_occupancy(TESLA_P100, 128, 64, 2048)
    assert prediction.active_warps_per_sm == occ.active_warps_per_sm
    assert prediction.occupancy == occ.occupancy
    assert prediction.concurrency == TESLA_P100.sm_count * occ.active_warps_per_sm
    # wave quantisation: passes over concurrency, rounded up
    assert prediction.waves == -(-4000 // prediction.concurrency)
    assert prediction.seconds > 0
    with pytest.raises(ConfigurationError):
        predict_launch(TESLA_P100, config, scheme="register_cache",
                       outputs=0, warp_passes=0,
                       compute_cycles_per_pass=1.0, memory_cycles_per_pass=0.0)


def test_prediction_takes_the_dram_bandwidth_floor():
    config = LaunchConfig(grid_dim=(10, 1, 1), block_threads=128)
    cheap = predict_launch(TESLA_P100, config, scheme="register_cache",
                           outputs=100, warp_passes=40,
                           compute_cycles_per_pass=100.0,
                           memory_cycles_per_pass=10.0)
    heavy = predict_launch(TESLA_P100, config, scheme="register_cache",
                           outputs=100, warp_passes=40,
                           compute_cycles_per_pass=100.0,
                           memory_cycles_per_pass=10.0,
                           dram_bytes=10e9)
    assert not cheap.bandwidth_bound
    assert heavy.bandwidth_bound
    assert heavy.seconds == pytest.approx(
        10e9 / TESLA_P100.effective_bandwidth_bytes, rel=1e-3)


def test_model_agrees_with_analytic_engine_when_bandwidth_bound():
    """At paper scale in fp64 both closed forms hit the same traffic floor."""
    conv2d = get_scenario("conv2d")
    model = conv2d.run_case(
        ScenarioCase("conv2d", "p100", "float64", "model", "paper"))
    analytic = conv2d.run_case(
        ScenarioCase("conv2d", "p100", "float64", "analytic", "paper"))
    assert model.parameters["bandwidth_seconds"] > model.parameters["latency_seconds"]
    assert model.milliseconds == pytest.approx(analytic.milliseconds, rel=1e-6)


@pytest.mark.parametrize("name", SSAM_KERNELS)
def test_model_tracks_the_simulator_at_functional_sizes(name):
    """Loose regression band: the prediction must stay the same order of
    magnitude as the counted simulation (the exact bounds are a reported
    quantity, not a constraint)."""
    scenario = get_scenario(name)
    for arch in MODEL_ARCHITECTURES:
        simulated = scenario.run_case(
            ScenarioCase(name, arch, "float32", "batched", "small"))
        predicted = scenario.run_case(
            ScenarioCase(name, arch, "float32", "model", "small"))
        ratio = predicted.milliseconds / simulated.milliseconds
        assert 0.2 < ratio < 5.0, f"{name}/{arch}: ratio {ratio}"


# --- pipeline integration ---------------------------------------------------

def test_paper_sweep_is_cached_and_deterministic(tmp_path):
    cache = SimulationCache(str(tmp_path / "cache"))
    cold = run_sweep("paper", cache=cache)
    expected = len(sweep_jobs("paper"))
    assert cache.stats()["misses"] == expected and cache.stats()["stores"] == expected
    warm_cache = SimulationCache(str(tmp_path / "cache"))
    warm = run_sweep("paper", cache=warm_cache)
    assert warm_cache.stats() == {"hits": expected, "misses": 0, "stores": 0}
    assert warm == cold
    # every registered SSAM kernel, both closed-form engines, nothing
    # functional
    engines = {m.extra["engine"] for m in cold.measurements}
    assert engines == {"analytic", "model"}
    kernels = {m.kernel for m in cold.measurements}
    assert kernels == set(SSAM_KERNELS)
    architectures = {m.architecture for m in cold.measurements}
    assert architectures == set(MODEL_ARCHITECTURES)


def test_paper_sweep_cli_writes_deterministic_artifacts(tmp_path, capsys):
    out_dir = tmp_path / "artifacts"
    args = ["--experiment", "sweep", "--matrix", "paper",
            "--cache-dir", str(tmp_path / "cache"),
            "--output-dir", str(out_dir)]
    assert runner.main(args) == 0
    capsys.readouterr()
    artifact = out_dir / "sweep.json"
    first_bytes = artifact.read_bytes()
    loaded = load_result(str(artifact))
    assert len(loaded.measurements) == len(sweep_jobs("paper"))
    assert runner.main(args) == 0
    err = capsys.readouterr().err
    assert "0 misses" in err
    assert artifact.read_bytes() == first_bytes


def test_model_cells_round_trip_through_json(tmp_path):
    result = run_sweep({"scenarios": ["scan"], "architectures": ["p100"],
                        "precisions": ["float32"], "engines": ["model"],
                        "sizes": ["paper"]})
    path = result.save(str(tmp_path / "model.json"))
    assert load_result(path) == result


# --- cross-engine validation experiment -------------------------------------

def test_cross_engine_validation_reports_every_ssam_kernel():
    payloads = execute_jobs(model_validation.jobs(quick=True))
    result = model_validation.assemble(payloads, quick=True)
    bounds = result.metadata["cross_engine"]["bounds"]
    for kernel in SSAM_KERNELS:
        assert kernel in bounds, f"missing error bounds for {kernel}"
        entry = bounds[kernel]
        assert entry["cases"] >= 8  # 4 architectures x 2 precisions
        assert 0.2 < entry["min"] <= entry["geomean"] <= entry["max"] < 5.0
    text = model_validation.render(result)
    assert "cross-engine validation" in text
    assert "ratio_geomean" in text
    for kernel in SSAM_KERNELS:
        assert kernel in text


def test_cross_engine_cells_share_the_sweep_cache(tmp_path):
    """A sweep that already simulated a cell leaves validation a cache hit."""
    from repro.experiments.jobs import dedupe_jobs

    validation = model_validation.jobs(quick=True)
    sweep_cells = sweep_jobs({"scenarios": ["conv2d"],
                              "architectures": ["p100"],
                              "precisions": ["float32"],
                              "engines": ["batched"], "sizes": ["tiny"]})
    shared = {j.key for j in validation} & {j.key for j in sweep_cells}
    assert shared == {"sweep:conv2d:p100:float32:batched:tiny"}
    # identical keys must carry identical definitions (dedupe accepts them)
    assert len(dedupe_jobs(validation + sweep_cells)) == len(validation)


# --- metrics helpers --------------------------------------------------------

def test_relative_error_and_bounds_helpers():
    assert relative_error(12.0, 10.0) == pytest.approx(0.2)
    assert relative_error(8.0, 10.0) == pytest.approx(-0.2)
    with pytest.raises(ConfigurationError):
        relative_error(1.0, 0.0)
    bounds = error_bounds([0.5, 2.0])
    assert bounds["min"] == 0.5 and bounds["max"] == 2.0
    assert bounds["geomean"] == pytest.approx(geometric_mean([0.5, 2.0]))
    with pytest.raises(ConfigurationError):
        error_bounds([])
