"""Unit tests for the shared result store (sqlite/WAL database).

Covers the store's contracts one at a time: schema versioning, the
first-writer-wins upsert (the fix for the directory cache's
read-modify-write race), execution claims with TTL takeover, the
checkpointed run ledger, and legacy directory-tree migration.  The
multi-process behaviour is exercised separately in
``test_store_concurrency.py`` and ``test_crash_recovery.py``.
"""

from __future__ import annotations

import sqlite3
import threading

import pytest

from repro.errors import ConfigurationError
from repro.experiments.cache import SimulationCache
from repro.service.store import (
    DEFAULT_CLAIM_TTL,
    STORE_SCHEMA_VERSION,
    ResultStore,
)


@pytest.fixture
def store(tmp_path):
    st = ResultStore(str(tmp_path / "results.sqlite"),
                     code_version=lambda: "cv0")
    yield st
    st.close()


KEY_A = {"func": "worker", "params": {"x": 1}}
KEY_B = {"func": "worker", "params": {"x": 2}}


# ---------------------------------------------------------------- schema

def test_schema_version_is_stamped_on_creation(store):
    assert store.schema_version() == STORE_SCHEMA_VERSION


def test_newer_schema_versions_are_rejected(store, tmp_path):
    store.upsert(KEY_A, {"v": 1})
    store.close()
    with sqlite3.connect(str(tmp_path / "results.sqlite")) as conn:
        conn.execute("UPDATE meta SET value=? WHERE key='schema_version'",
                     (str(STORE_SCHEMA_VERSION + 1),))
    newer = ResultStore(str(tmp_path / "results.sqlite"))
    with pytest.raises(ConfigurationError, match="newer than this build"):
        newer.entry_count()


def test_unknown_older_schema_version_fails_loudly(store, tmp_path):
    store.upsert(KEY_A, {"v": 1})
    store.close()
    with sqlite3.connect(str(tmp_path / "results.sqlite")) as conn:
        conn.execute("UPDATE meta SET value='0' WHERE key='schema_version'")
    older = ResultStore(str(tmp_path / "results.sqlite"))
    with pytest.raises(ConfigurationError, match="no migration"):
        older.entry_count()


# ------------------------------------------------------ first-writer-wins

def test_upsert_is_first_writer_wins(store):
    assert store.upsert(KEY_A, {"v": "first"}) is True
    assert store.upsert(KEY_A, {"v": "second"}) is False
    assert store.get(KEY_A) == {"v": "first"}
    assert store.entry_count() == 1


def test_distinct_keys_do_not_collide(store):
    store.upsert(KEY_A, {"v": 1})
    store.upsert(KEY_B, {"v": 2})
    assert store.entry_count() == 2
    assert store.get(KEY_A) == {"v": 1}
    assert store.get(KEY_B) == {"v": 2}


def test_code_version_changes_the_digest(tmp_path):
    version = ["cv0"]
    store = ResultStore(str(tmp_path / "s.sqlite"),
                        code_version=lambda: version[0])
    store.upsert(KEY_A, {"v": "old"})
    version[0] = "cv1"
    assert store.get(KEY_A) is None, "new code version must miss"
    store.upsert(KEY_A, {"v": "new"})
    assert store.get(KEY_A) == {"v": "new"}
    assert store.entry_count() == 2
    assert store.stale_entry_count() == 1
    store.close()


def test_dump_excludes_volatile_columns(store):
    store.upsert(KEY_A, {"v": 1}, job_key="job:a")
    dump = store.dump()
    assert len(dump) == 1
    assert set(dump[0]) == {"digest", "job_key", "code_version", "key",
                            "payload"}
    assert dump[0]["job_key"] == "job:a"
    assert dump[0]["payload"] == {"v": 1}


# ---------------------------------------------------------------- claims

def test_claim_is_exclusive_until_released(store):
    assert store.claim(KEY_A, owner="w1") is True
    assert store.claim(KEY_A, owner="w2") is False
    store.release_claim(KEY_A, owner="w1")
    assert store.claim(KEY_A, owner="w2") is True


def test_claim_refused_once_result_exists(store):
    store.upsert(KEY_A, {"v": 1})
    assert store.claim(KEY_A, owner="w1") is False


def test_upsert_releases_the_writers_claim(store):
    store.claim(KEY_A, owner=store.owner)
    assert store.claim_count() == 1
    store.upsert(KEY_A, {"v": 1})
    assert store.claim_count() == 0


def test_expired_claims_are_taken_over(tmp_path):
    fast = ResultStore(str(tmp_path / "s.sqlite"), claim_ttl=0.0,
                       code_version=lambda: "cv0")
    assert fast.claim(KEY_A, owner="dead-process") is True
    # ttl=0 means the lease is immediately stale: takeover succeeds and
    # records the new owner
    assert fast.claim(KEY_A, owner="survivor") is True
    assert fast.claim_count() == 1
    fast.close()


def test_live_claims_are_not_taken_over(store):
    assert store.claim_ttl == DEFAULT_CLAIM_TTL
    assert store.claim(KEY_A, owner="w1") is True
    assert store.claim(KEY_A, owner="w2") is False, \
        "a fresh lease must not be stolen"


# ---------------------------------------------------------------- runs

def test_run_ledger_round_trip(store):
    cells = {"cell:a": store.digest_for(KEY_A),
             "cell:b": store.digest_for(KEY_B)}
    store.create_run("run-1", "sweep", {"name": "tier1"}, cells,
                     priority=5, name="nightly",
                     cell_status={"cell:a": "cached"})
    record = store.run_record("run-1")
    assert record["kind"] == "sweep"
    assert record["matrix"] == {"name": "tier1"}
    assert record["priority"] == 5
    assert record["total"] == 2
    assert store.run_progress("run-1") == {"cached": 1, "pending": 1,
                                           "total": 2}
    store.set_cell_status("run-1", "cell:b", "failed", "boom")
    failed = store.run_cells("run-1", status="failed")
    assert [c["cell"] for c in failed] == ["cell:b"]
    assert failed[0]["detail"] == "boom"
    store.set_run_status("run-1", "failed")
    assert store.list_runs(status=["failed"])[0]["run_id"] == "run-1"
    assert store.list_runs(status=["done"]) == []
    with pytest.raises(ConfigurationError, match="unknown run"):
        store.run_record("run-없음")


def test_add_run_cells_is_idempotent_and_tracks_total(store):
    store.create_run("run-1", "tune", {}, {})
    assert store.run_record("run-1")["total"] == 0
    store.add_run_cells("run-1", {"c1": "d1", "c2": "d2"})
    store.add_run_cells("run-1", {"c2": "d2", "c3": "d3"})
    assert store.run_record("run-1")["total"] == 3
    assert [c["cell"] for c in store.run_cells("run-1")] == ["c1", "c2", "c3"]


def test_next_run_ordinal_counts_existing_runs(store):
    assert store.next_run_ordinal() == 1
    store.create_run("run-1", "sweep", {}, {})
    assert store.next_run_ordinal() == 2


# ------------------------------------------------------------- migration

def test_directory_migration_is_idempotent(tmp_path, monkeypatch):
    from repro.experiments import cache as cache_mod

    monkeypatch.setattr(cache_mod, "code_version", lambda: "cv0")
    legacy = SimulationCache(str(tmp_path))
    key = {"func": "worker", "params": {"x": 9}}
    path = legacy.entry_path(key)
    import json
    import os

    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"format": 1, "key": key, "payload": {"v": 9}}, handle)

    store = ResultStore(str(tmp_path / "s.sqlite"),
                        code_version=lambda: "cv0")
    first = store.migrate_directory_entries(str(tmp_path / "v1"))
    second = store.migrate_directory_entries(str(tmp_path / "v1"))
    assert (first, second) == (1, 0)
    assert store.get(key) == {"v": 9}
    store.close()


# ---------------------------------------- cache store-back race (regression)

def test_two_writers_racing_one_key_store_exactly_one_row(tmp_path):
    """Regression for the directory cache's read-modify-write window.

    The legacy ``store()`` did lookup-then-write: two processes that both
    missed could both write, last-writer-wins, with a torn window in
    between.  Through the sqlite store the entire decision is one
    transaction — exactly one writer wins, the loser learns it lost, and
    every subsequent lookup serves the winner's payload.
    """
    key = {"func": "worker", "params": {"x": 1}}
    barrier = threading.Barrier(2)
    outcomes = {}

    def writer(name):
        cache = SimulationCache(str(tmp_path))  # own connection per thread
        barrier.wait()
        outcomes[name] = cache.store(key, {"written_by": name})

    threads = [threading.Thread(target=writer, args=(f"w{i}",))
               for i in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert sorted(outcomes.values()) == [False, True], \
        "exactly one writer must win the upsert"
    winner = next(name for name, won in outcomes.items() if won)
    survivor = SimulationCache(str(tmp_path))
    assert survivor.lookup(key) == {"written_by": winner}
    assert survivor.entry_count() == 1


# ------------------------------------------------------- tuned configs (v2)

TUNED_KEY = dict(scenario="conv2d", architecture="p100",
                 precision="float32", size_class="paper")


def test_v1_store_migrates_to_v2_with_tuned_configs(store, tmp_path):
    """A pre-tuning-database store upgrades in place through the migration
    hook: version stamped forward, ``tuned_configs`` present and usable."""
    store.upsert(KEY_A, {"v": 1})
    store.close()
    path = str(tmp_path / "results.sqlite")
    with sqlite3.connect(path) as conn:
        conn.execute("DROP TABLE tuned_configs")
        conn.execute("UPDATE meta SET value='1' WHERE key='schema_version'")
    upgraded = ResultStore(path, code_version=lambda: "cv0")
    assert upgraded.schema_version() == STORE_SCHEMA_VERSION
    assert upgraded.get(KEY_A) == {"v": 1}, "v1 rows survive the migration"
    upgraded.put_tuned_config(plan_kwargs={"block_threads": 256}, **TUNED_KEY)
    assert upgraded.tuned_config_count() == 1
    upgraded.close()


def test_tuned_config_round_trip(store):
    store.put_tuned_config(plan_kwargs={"outputs_per_thread": 2,
                                        "block_threads": 64},
                           model_ms=1.25, default_model_ms=2.5, speedup=2.0,
                           search="guided", confirmed=True,
                           tune_digest="t0", **TUNED_KEY)
    found = store.best_config("conv2d", "p100", "float32")
    assert found["plan_kwargs"] == {"outputs_per_thread": 2,
                                    "block_threads": 64}
    assert found["speedup"] == 2.0
    assert found["search"] == "guided"
    assert found["confirmed"] is True
    assert found["code_version"] == "cv0"
    assert found["created_at"] > 0
    assert store.best_config("conv2d", "v100", "float32") is None
    assert store.best_config("conv2d", "p100", "float32",
                             size_class="small") is None


def test_tuned_config_upsert_is_last_writer_wins(store):
    """Unlike simulation payloads, a tuned row is a recommendation — every
    tuner run refreshes it in place."""
    store.put_tuned_config(plan_kwargs={"block_threads": 64},
                           search="exhaustive", **TUNED_KEY)
    store.put_tuned_config(plan_kwargs={"block_threads": 256},
                           search="guided", **TUNED_KEY)
    assert store.tuned_config_count() == 1
    found = store.best_config("conv2d", "p100", "float32")
    assert found["plan_kwargs"] == {"block_threads": 256}
    assert found["search"] == "guided"


def test_reduced_space_rows_never_shadow_full_space_bests(store):
    """A quick (reduced-space) tune run against a shared store writes its
    own space-keyed row; lookups serve the best row of the cell, so the
    full-space recommendation survives — planners never silently resolve
    a degraded config because a --quick run came later."""
    full_space = {"outputs_per_thread": list(range(1, 9)),
                  "block_threads": [64, 128, 256, 512]}
    quick_space = {"outputs_per_thread": [2, 4], "block_threads": [128, 256]}
    store.put_tuned_config(plan_kwargs={"outputs_per_thread": 7,
                                        "block_threads": 64},
                           model_ms=1.0, search="exhaustive",
                           space=full_space, **TUNED_KEY)
    store.put_tuned_config(plan_kwargs={"outputs_per_thread": 2,
                                        "block_threads": 256},
                           model_ms=1.6, search="guided",
                           space=quick_space, **TUNED_KEY)
    assert store.tuned_config_count() == 2, "distinct spaces, distinct rows"
    found = store.best_config("conv2d", "p100", "float32")
    assert found["plan_kwargs"] == {"outputs_per_thread": 7,
                                    "block_threads": 64}
    assert found["space"] == full_space
    assert found["space_size"] == 32
    # re-running over the same space still refreshes that row in place
    store.put_tuned_config(plan_kwargs={"outputs_per_thread": 6,
                                        "block_threads": 64},
                           model_ms=0.9, search="guided",
                           space=full_space, **TUNED_KEY)
    assert store.tuned_config_count() == 2
    found = store.best_config("conv2d", "p100", "float32")
    assert found["plan_kwargs"] == {"outputs_per_thread": 6,
                                    "block_threads": 64}
    assert found["search"] == "guided"


def test_v2_store_migrates_to_v3_space_keyed(store, tmp_path):
    """A v2 (pre-space) store rebuilds its tuned_configs table in place:
    old rows survive under the empty space digest and rank below any row
    that records the space it explored."""
    store.upsert(KEY_A, {"v": 1})   # force schema creation before surgery
    store.close()
    path = str(tmp_path / "results.sqlite")
    with sqlite3.connect(path) as conn:
        conn.execute("DROP TABLE tuned_configs")
        conn.execute(
            "CREATE TABLE tuned_configs ("
            " scenario TEXT NOT NULL, architecture TEXT NOT NULL,"
            " precision TEXT NOT NULL, size_class TEXT NOT NULL,"
            " code_version TEXT NOT NULL, plan_kwargs TEXT NOT NULL,"
            " model_ms REAL, default_model_ms REAL, speedup REAL,"
            " search TEXT, confirmed INTEGER, tune_digest TEXT,"
            " created_at REAL NOT NULL,"
            " PRIMARY KEY (scenario, architecture, precision, size_class,"
            " code_version))")
        conn.execute(
            "INSERT INTO tuned_configs VALUES"
            " ('conv2d','p100','float32','paper','cv0',"
            " '{\"block_threads\": 64}',2.0,NULL,NULL,'exhaustive',NULL,"
            " NULL,1.0)")
        conn.execute("UPDATE meta SET value='2' WHERE key='schema_version'")
    upgraded = ResultStore(path, code_version=lambda: "cv0")
    assert upgraded.schema_version() == STORE_SCHEMA_VERSION
    found = upgraded.best_config("conv2d", "p100", "float32")
    assert found["plan_kwargs"] == {"block_threads": 64}
    assert found["space_digest"] == ""
    assert found["space"] is None and found["space_size"] == 0
    # a space-recording row with a better predicted time takes over
    upgraded.put_tuned_config(plan_kwargs={"block_threads": 128},
                              model_ms=1.5,
                              space={"block_threads": [64, 128, 256, 512]},
                              **TUNED_KEY)
    assert upgraded.tuned_config_count() == 2
    assert upgraded.best_config("conv2d", "p100",
                                "float32")["plan_kwargs"] == {
                                    "block_threads": 128}
    upgraded.close()


def test_tuned_configs_are_code_version_scoped(tmp_path):
    version = ["cv0"]
    store = ResultStore(str(tmp_path / "s.sqlite"),
                        code_version=lambda: version[0])
    store.put_tuned_config(plan_kwargs={"block_threads": 64}, **TUNED_KEY)
    version[0] = "cv1"
    assert store.best_config("conv2d", "p100", "float32") is None, \
        "a stale digest must never be served"
    store.put_tuned_config(plan_kwargs={"block_threads": 128}, **TUNED_KEY)
    assert store.tuned_config_count() == 2
    current = store.list_tuned_configs(current_only=True)
    assert [r["code_version"] for r in current] == ["cv1"]
    assert len(store.list_tuned_configs()) == 2
    store.close()
