"""HTTP service tests with golden fixtures for the tier1 matrix.

A real daemon (ephemeral port) serves a real :class:`SweepService`; the
thin urllib client drives the submit → status → results lifecycle over
HTTP.  The three lifecycle responses are pinned as committed JSON golden
fixtures (volatile fields — run id, code version — normalised out);
regenerate after an intentional protocol change with::

    SSAM_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_service_daemon.py

The warm-resubmit test is the service's dedup acceptance criterion: a
second submission of the same matrix must be answered 100% from the store,
with nothing queued and nothing executed.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.experiments.cache import SimulationCache, code_version
from repro.experiments.results import ExperimentResult
from repro.scenarios.sweep import MATRICES
from repro.service.client import ServiceClient
from repro.service.daemon import serve, write_endpoint_file

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden" / "service"


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    cache = SimulationCache(str(tmp_path_factory.mktemp("service-cache")))
    server, core = serve(cache, port=0, threads=2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    yield client, core, cache, server
    server.shutdown()
    server.server_close()
    core.shutdown()


@pytest.fixture(scope="module")
def tier1_run(service):
    """The cold tier1 submission, run to completion once per module."""
    client, core, cache, _ = service
    assert cache.stats() == {"hits": 0, "misses": 0, "stores": 0}
    submit = client.submit_sweep("tier1")
    status = client.wait(submit["run_id"], timeout=600)
    assert status["status"] == "done"
    return submit, status


def _normalised(payload, run_id: str):
    text = json.dumps(payload, indent=2, sort_keys=True)
    text = text.replace(run_id, "<run-id>")
    text = text.replace(code_version(), "<code-version>")
    return text + "\n"


def _assert_golden(name: str, text: str):
    path = GOLDEN_DIR / f"{name}.json"
    if os.environ.get("SSAM_UPDATE_GOLDENS"):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"missing golden fixture {path}; regenerate with SSAM_UPDATE_GOLDENS=1")
    assert text == path.read_text(encoding="utf-8"), (
        f"service {name} response drifted from its golden fixture; if the "
        f"protocol change is intentional, regenerate with SSAM_UPDATE_GOLDENS=1")


# ------------------------------------------------------------- goldens

def test_submit_response_matches_golden(tier1_run):
    submit, _ = tier1_run
    _assert_golden("submit", _normalised(submit, submit["run_id"]))


def test_status_response_matches_golden(tier1_run):
    submit, status = tier1_run
    _assert_golden("status", _normalised(status, submit["run_id"]))


def test_results_response_matches_golden(service, tier1_run):
    client, _, _, _ = service
    submit, _ = tier1_run
    results = client.results(submit["run_id"])
    # the full typed artifact round-trips through the HTTP boundary
    assert ExperimentResult.from_dict(results).experiment == "sweep"
    _assert_golden("results", _normalised(results, submit["run_id"]))


# ------------------------------------------------- dedup acceptance

def test_warm_resubmit_is_fully_deduplicated(service, tier1_run):
    client, core, _, _ = service
    submit, _ = tier1_run
    executed_before = core.store.entry_count()
    warm = client.submit_sweep("tier1")
    assert warm["run_id"] != submit["run_id"]
    assert warm["status"] == "done", "a fully cached run finishes at submit"
    assert warm["cached"] == warm["total"] == submit["total"]
    assert warm["queued"] == 0
    assert core.store.entry_count() == executed_before, \
        "a 100%-hit resubmit must not execute (or store) anything"
    # and its results are byte-identical to the cold run's
    assert client.results(warm["run_id"]) == client.results(submit["run_id"])


def test_refresh_classifies_every_cell_fresh_after_a_run(service, tier1_run):
    client, _, _, _ = service
    submit, _ = tier1_run
    refreshed = client.refresh("tier1")
    assert refreshed["refresh"] == {"fresh": submit["total"],
                                    "invalidated": 0, "missing": 0}
    assert refreshed["status"] == "done"


# ------------------------------------------------------- other endpoints

def test_cells_endpoint_streams_one_line_per_cell(service, tier1_run):
    client, _, _, _ = service
    submit, _ = tier1_run
    cells = client.cells(submit["run_id"])
    assert len(cells) == submit["total"]
    assert all(entry["cell"].startswith("sweep:") for entry in cells)
    assert all("milliseconds" in entry["payload"] for entry in cells)


def test_registry_endpoints_mirror_the_in_process_registry(service):
    client, _, _, _ = service
    scenarios = client.scenarios()
    assert {s["name"] for s in scenarios} >= {"conv2d", "scan", "stencil3d"}
    assert all(set(s) >= {"family", "role", "engines", "tunables"}
               for s in scenarios)
    assert set(client.matrices()) == set(MATRICES)
    health = client.health()
    assert health["status"] == "ok"
    assert health["store"]["entries"] > 0


def test_runs_endpoint_lists_every_submission(service, tier1_run):
    client, _, _, _ = service
    submit, _ = tier1_run
    listed = {run["run_id"] for run in client.runs()}
    assert submit["run_id"] in listed


def test_error_responses_are_json(service):
    client, _, _, _ = service
    with pytest.raises(SimulationError, match="unknown run"):
        client.status("sweep-9999-nonexistent")
    with pytest.raises(SimulationError, match="no such endpoint"):
        client._request("GET", "/not-a-thing")
    with pytest.raises(SimulationError, match="unknown sweep matrix"):
        client.submit_sweep("no-such-matrix")


def test_submit_with_unknown_architecture_is_a_400_listing_names(service):
    """A typo'd axis value must be a client error naming the valid values,
    not a silently thinner matrix and not an opaque 500."""
    client, _, _, _ = service
    bad = {"scenarios": "ssam", "architectures": ["a100x"],
           "precisions": ["float32"], "engines": ["batched"],
           "sizes": ["tiny"]}
    with pytest.raises(SimulationError) as excinfo:
        client.submit_sweep(bad)
    message = str(excinfo.value)
    assert "(400)" in message  # ConfigurationError, not an internal error
    assert "unknown architectures" in message and "a100x" in message
    for name in ("a100", "h100", "p100", "v100"):
        assert name in message
    # unknown engines and precisions fail the same way
    with pytest.raises(SimulationError, match=r"\(400\).*unknown engines"):
        client.submit_sweep({"scenarios": "ssam", "engines": ["vector"]})
    with pytest.raises(SimulationError, match=r"\(400\).*float16"):
        client.submit_sweep({"scenarios": "ssam", "precisions": ["float16"]})


def test_endpoint_file_discovery(service, tmp_path):
    client, core, cache, server = service
    path = write_endpoint_file(cache, server)
    try:
        discovered = ServiceClient.discover(cache.directory)
        assert discovered.url == client.url
        assert discovered.health()["status"] == "ok"
    finally:
        os.unlink(path)
    with pytest.raises(ConfigurationError, match="no running service"):
        ServiceClient.discover(str(tmp_path / "empty"))


# ------------------------------------------------------------------ tune

def test_tune_submission_runs_through_the_service_pool(service):
    client, core, _, _ = service
    run = client.submit_tune({"quick": True, "scenarios": ["conv2d"],
                              "confirm_engine": "replay"})
    status = client.wait(run["run_id"], timeout=600)
    assert status["status"] == "done"
    assert status["kind"] == "tune"
    result = ExperimentResult.from_dict(client.results(run["run_id"]))
    assert result.experiment == "tune"
    assert result.measurements, "the tune artifact must carry cells"
    # every design point the tuner evaluated is checkpointed as a run cell
    progress = core.store.run_progress(run["run_id"])
    assert progress["total"] > 0
    assert progress.get("pending", 0) == 0


# -------------------------------------------------------- tuning database

def test_best_config_endpoint_falls_back_to_paper(service):
    """An untuned cell answers with the paper defaults, mirroring the
    planners' resolution chain — never a 404."""
    client, _, _, _ = service
    response = client.best_config("stencil3d", "h100", "float64")
    assert response["source"] == "paper"
    assert response["plan_kwargs"] == {"outputs_per_thread": 4,
                                       "block_threads": 128, "block_rows": 1}
    assert response["code_version"] == code_version()
    assert "tuned" not in response


def test_tune_run_populates_the_best_config_endpoint(service):
    client, core, _, _ = service
    run = client.submit_tune({"quick": True, "scenarios": ["scan"]},
                             search="guided")
    status = client.wait(run["run_id"], timeout=600)
    assert status["status"] == "done"
    result = ExperimentResult.from_dict(client.results(run["run_id"]))
    assert result.metadata["search"] == "guided"

    response = client.best_config("scan", "p100", "float32")
    assert response["source"] == "tuned"
    assert response["size_class"] == "paper"
    tuned = response["tuned"]
    assert tuned["search"] == "guided"
    assert tuned["model_ms"] <= tuned["default_model_ms"]
    # the endpoint serves the exact configuration the tune run found
    (row,) = [m for m in result.measurements
              if m.extra["cell_id"] == "scan:p100:float32"]
    assert response["plan_kwargs"] == row.extra["best_plan_kwargs"]

    index = client.tuned_configs()
    assert index["count"] == core.store.tuned_config_count() > 0
    listed = {(r["scenario"], r["architecture"], r["precision"])
              for r in index["tuned_configs"]}
    assert ("scan", "p100", "float32") in listed


def test_best_config_size_class_is_a_distinct_key(service):
    client, _, _, _ = service
    response = client.best_config("scan", "p100", "float32",
                                  size_class="galactic")
    assert response["source"] == "paper"
    assert response["size_class"] == "galactic"
