"""Unit tests for the scenario registry (envelopes, expansion, lookup)."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.convolution.spec import ConvolutionSpec
from repro.errors import ConfigurationError
from repro.gpu.architecture import architecture_names
from repro.scenarios import (
    ENGINES,
    Scenario,
    ScenarioCase,
    all_scenarios,
    expand_matrix,
    get_scenario,
    register,
    scenario_names,
    unregister,
)


def test_builtin_registrations_cover_the_paper():
    names = scenario_names()
    for kernel in ("conv1d", "conv2d", "stencil2d", "stencil3d", "scan"):
        assert kernel in names
    assert scenario_names(role="ssam") == \
        ["conv1d", "conv2d", "stencil2d", "stencil3d", "scan",
         "stencil2d-order4", "stencil2d-order6", "stencil2d-varcoef",
         "stencil2d-masked", "conv2d-pipeline"]
    assert "conv2d-npp" in scenario_names(role="baseline")
    assert "stencil2d-original" in scenario_names(family="stencil")
    assert architecture_names() == ("k40", "m40", "p100", "v100", "a100", "h100")


def test_envelope_supports_and_size_restrictions():
    conv2d = get_scenario("conv2d")
    assert conv2d.supports("p100", "float32", "batched", "tiny")
    assert not conv2d.supports("p100", "float32", "bogus")
    assert not conv2d.supports("p100", "float16", "batched")
    # paper-scale domains run only on the closed-form engines
    assert conv2d.engines_for("paper") == ("analytic", "model")
    assert not conv2d.supports("p100", "float32", "scalar", "paper")
    assert conv2d.supports("p100", "float32", "analytic", "paper")
    assert conv2d.supports("p100", "float32", "model", "paper")
    # the engine restriction never leaks into the runner parameters
    assert "engines" not in conv2d.resolve_size("paper")
    scan = get_scenario("scan")
    assert "analytic" not in scan.engines
    assert scan.engines_for("paper") == ("model",)


def test_unknown_lookups_raise():
    with pytest.raises(ConfigurationError):
        get_scenario("warp-drive")
    with pytest.raises(ConfigurationError):
        get_scenario("conv2d").resolve_size("galactic")
    with pytest.raises(ConfigurationError):
        get_scenario("conv2d").run_case(
            ScenarioCase("conv2d", "p100", "float32", "scalar", "paper"))
    with pytest.raises(ConfigurationError):
        get_scenario("conv2d-cudnn").oracle_output(
            ScenarioCase("conv2d-cudnn", "p100", "float32", "analytic", "tiny"))


def test_duplicate_and_invalid_registrations_raise():
    donor = get_scenario("scan")
    with pytest.raises(ConfigurationError):
        register(donor)  # name already taken
    with pytest.raises(ConfigurationError):
        Scenario(name="bad", family="scan", dims=1, runner=donor.runner,
                 sizes={"tiny": {}}, architectures=("p100",),
                 precisions=("float32",), engines=("warp-speed",))
    with pytest.raises(ConfigurationError):
        Scenario(name="bad", family="scan", dims=1, runner=donor.runner,
                 sizes={}, architectures=("p100",),
                 precisions=("float32",), engines=("scalar",))


def test_case_identity_is_stable():
    case = ScenarioCase("conv2d", "p100", "float32", "batched", "tiny")
    assert case.case_id == "conv2d:p100:float32:batched:tiny"
    assert case.fingerprint() == \
        ScenarioCase("conv2d", "p100", "float32", "batched", "tiny").fingerprint()
    assert case.fingerprint() != \
        ScenarioCase("conv2d", "v100", "float32", "batched", "tiny").fingerprint()


def test_expand_matrix_selectors_and_order():
    cases = expand_matrix({"scenarios": "convolution",
                           "architectures": ["p100"],
                           "precisions": ["float32"],
                           "engines": ["analytic"],
                           "sizes": ["paper"]})
    names = [c.scenario for c in cases]
    # registration order, analytic-only baselines included; conv1d has no
    # analytic engine and no paper size, so it must be skipped
    assert names == ["conv2d", "conv2d-npp", "conv2d-arrayfire",
                     "conv2d-halide", "conv2d-cudnn", "conv2d-cufft"]
    # duplicate selectors do not duplicate cases
    doubled = expand_matrix({"scenarios": ["conv2d", "convolution"],
                             "architectures": ["p100"],
                             "precisions": ["float32"],
                             "engines": ["analytic"],
                             "sizes": ["paper"]})
    assert [c.case_id for c in doubled] == [c.case_id for c in cases]


def test_expand_matrix_rejects_empty_and_unknown():
    with pytest.raises(ConfigurationError):
        expand_matrix({"scenarios": ["conv2d"], "engines": ["scalar"],
                       "sizes": ["paper"]})  # paper is analytic-only
    with pytest.raises(ConfigurationError):
        expand_matrix({"scenarios": ["warp-drive"]})


def test_expand_matrix_validates_axis_values():
    """A misspelled axis value raises a ConfigurationError listing the valid
    vocabulary instead of silently thinning the matrix."""
    with pytest.raises(ConfigurationError) as excinfo:
        expand_matrix({"scenarios": ["conv2d"], "architectures": ["a100x"]})
    message = str(excinfo.value)
    assert "a100x" in message
    for name in architecture_names():
        assert name in message
    with pytest.raises(ConfigurationError, match="unknown engines.*vector"):
        expand_matrix({"scenarios": ["conv2d"], "engines": ["vector"]})
    with pytest.raises(ConfigurationError, match="unknown sizes"):
        expand_matrix({"scenarios": ["conv2d"], "sizes": ["galactic"]})
    with pytest.raises(ConfigurationError, match="float16"):
        expand_matrix({"scenarios": ["conv2d"], "precisions": ["float16"]})
    # a valid subset still expands (validation does not over-reject)
    cases = expand_matrix({"scenarios": ["conv2d"], "architectures": ["h100"],
                           "precisions": ["float32"], "engines": ["batched"],
                           "sizes": ["tiny"]})
    assert [c.case_id for c in cases] == ["conv2d:h100:float32:batched:tiny"]


def test_scenario_plan_respects_register_budget():
    conv2d = get_scenario("conv2d")
    for arch in ("p100", "v100"):
        plan = conv2d.build_plan("small", arch, "float64")
        assert plan is not None
        assert plan.register_cache.registers_per_thread <= \
            plan.architecture.max_registers_per_thread
    assert get_scenario("scan").build_plan("tiny", "p100", "float32") is None


def test_run_analytic_matches_direct_baseline_call():
    """The registry path the experiments use is the direct call, verbatim."""
    from repro.baselines.conv2d import npp_like_convolve2d

    spec = ConvolutionSpec.gaussian(7)
    direct = npp_like_convolve2d(None, spec, "v100", "float32",
                                 functional=False, width=512, height=256)
    routed = get_scenario("conv2d-npp").run_analytic(
        spec, {"width": 512, "height": 256}, "v100", "float32")
    assert routed.launch.counters.as_dict() == direct.launch.counters.as_dict()
    assert routed.milliseconds == direct.milliseconds


def test_register_unregister_round_trip():
    donor = get_scenario("conv1d")
    name = "conv1d-registry-test"
    register(replace(donor, name=name))
    try:
        assert name in scenario_names()
        copy = get_scenario(name)
        result = copy.run_case(
            ScenarioCase(name, "p100", "float32", "batched", "tiny"))
        oracle = copy.oracle_output(
            ScenarioCase(name, "p100", "float32", "batched", "tiny"))
        assert np.max(np.abs(result.output - oracle)) < 1e-4
    finally:
        unregister(name)
    assert name not in scenario_names()


def test_engines_constant_matches_registry_vocabulary():
    assert ENGINES == ("scalar", "batched", "replay", "analytic", "model")
    for scenario in all_scenarios():
        assert set(scenario.engines) <= set(ENGINES)
        for size in scenario.sizes:
            assert set(scenario.engines_for(size)) <= set(scenario.engines)


def test_every_builtin_scenario_has_a_model_entry():
    """The Section 5 model engine covers every registered implementation."""
    for scenario in all_scenarios():
        assert "model" in scenario.engines, scenario.name
        assert scenario.model is not None, scenario.name


def test_every_executable_scenario_has_a_cpu_oracle():
    """Any entry with a functional engine must ship a ground-truth oracle —
    otherwise the differential matrix cannot check it (CI enforces the same
    invariant as a standalone coverage step)."""
    from repro.scenarios.registry import NON_EXECUTING_ENGINES

    for scenario in all_scenarios():
        executable = [e for e in scenario.engines
                      if e not in NON_EXECUTING_ENGINES]
        if executable:
            assert scenario.oracle is not None, \
                f"{scenario.name} runs {executable} but has no oracle"


def test_model_engine_requires_an_evaluator():
    donor = get_scenario("scan")
    with pytest.raises(ConfigurationError):
        Scenario(name="bad", family="scan", dims=1, runner=donor.runner,
                 sizes={"tiny": {}}, architectures=("p100",),
                 precisions=("float32",), engines=("scalar", "model"))


# ------------------------------------------------- launch-parameter overrides

def test_plan_kwargs_case_identity_and_normalisation():
    plain = ScenarioCase("conv2d", "p100", "float32", "batched", "tiny")
    assert plain.case_id == "conv2d:p100:float32:batched:tiny"
    assert "plan_kwargs" not in plain.to_dict()
    tuned = ScenarioCase("conv2d", "p100", "float32", "batched", "tiny",
                         {"outputs_per_thread": 2, "block_threads": 256})
    # canonical order (sorted), independent of the mapping's insertion order
    swapped = ScenarioCase("conv2d", "p100", "float32", "batched", "tiny",
                           {"block_threads": 256, "outputs_per_thread": 2})
    assert tuned == swapped
    assert tuned.case_id == ("conv2d:p100:float32:batched:tiny:"
                             "block_threads=256,outputs_per_thread=2")
    assert tuned.fingerprint() == swapped.fingerprint()
    assert tuned.fingerprint() != plain.fingerprint()
    assert tuned.plan_overrides == {"outputs_per_thread": 2, "block_threads": 256}
    with pytest.raises(ConfigurationError):
        ScenarioCase("conv2d", "p100", "float32", "batched", "tiny",
                     {"block_threads": "many"})


def test_plan_kwargs_validated_against_the_tunable_envelope():
    conv2d = get_scenario("conv2d")
    assert conv2d.tunables == ("outputs_per_thread", "block_threads",
                               "block_rows")
    scan = get_scenario("scan")
    assert scan.tunables == ("block_threads",)
    # scan has no sliding window: requesting P is a configuration error
    with pytest.raises(ConfigurationError):
        scan.run_case(ScenarioCase("scan", "p100", "float32", "batched",
                                   "tiny", {"outputs_per_thread": 2}))
    # baselines declare no tunables at all
    npp = get_scenario("conv2d-npp")
    assert npp.tunables == ()
    with pytest.raises(ConfigurationError):
        npp.validate_plan_kwargs({"block_threads": 256})


def test_plan_kwargs_flow_into_plans_and_results():
    conv2d = get_scenario("conv2d")
    plan = conv2d.build_plan("tiny", "p100", "float32",
                             {"outputs_per_thread": 2, "block_threads": 256})
    assert plan.outputs_per_thread == 2
    assert plan.block_threads == 256
    default = conv2d.build_plan("tiny", "p100", "float32")
    assert default.outputs_per_thread == 4 and default.block_threads == 128
    result = conv2d.run_case(ScenarioCase(
        "conv2d", "p100", "float32", "batched", "tiny",
        {"outputs_per_thread": 2, "block_threads": 256}))
    assert result.parameters["P"] == 2
    assert result.launch.config.block_threads == 256
    # overridden launches still produce the exact reference output
    oracle = conv2d.oracle_output(ScenarioCase(
        "conv2d", "p100", "float32", "batched", "tiny"))
    assert np.max(np.abs(result.output.astype(np.float64) - oracle)) < 1e-5


def test_expand_matrix_plan_kwargs_axis():
    cases = expand_matrix({"scenarios": ["conv2d", "scan"],
                           "architectures": ["p100"],
                           "precisions": ["float32"],
                           "engines": ["batched"],
                           "sizes": ["tiny"],
                           "plan_kwargs": [{}, {"block_threads": 256},
                                           {"outputs_per_thread": 2}]})
    ids = [c.case_id for c in cases]
    # conv2d tunes both parameters; scan skips the P-only override
    assert ids == [
        "conv2d:p100:float32:batched:tiny",
        "conv2d:p100:float32:batched:tiny:block_threads=256",
        "conv2d:p100:float32:batched:tiny:outputs_per_thread=2",
        "scan:p100:float32:batched:tiny",
        "scan:p100:float32:batched:tiny:block_threads=256",
    ]
