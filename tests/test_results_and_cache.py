"""Unit tests for the typed-results layer and the simulation cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.convolution.spec import ConvolutionSpec
from repro.core.plan import plan_convolution
from repro.errors import ConfigurationError
from repro.experiments.cache import SimulationCache, code_version
from repro.experiments.jobs import SimulationJob, dedupe_jobs, execute_job, resolve_worker
from repro.experiments.parallel import execute_jobs
from repro.experiments.results import (
    SCHEMA_VERSION,
    ExperimentResult,
    Measurement,
    load_result,
)
from repro.serialization import canonical_json, jsonify, stable_digest
from repro.stencils.catalog import CATALOG


# ----------------------------------------------------------- serialization

def test_jsonify_normalises_tuples_and_numpy_types():
    value = {"a": (1, 2), "b": np.float64(1.5), "c": np.int32(3),
             "d": np.array([1.0, 2.0]), "e": np.bool_(True)}
    normal = jsonify(value)
    assert normal == {"a": [1, 2], "b": 1.5, "c": 3, "d": [1.0, 2.0], "e": True}
    assert type(normal["b"]) is float and type(normal["c"]) is int


def test_jsonify_rejects_unserialisable_values():
    with pytest.raises(TypeError):
        jsonify(object())


def test_stable_digest_is_order_insensitive():
    assert stable_digest({"x": 1, "y": (2, 3)}) == stable_digest({"y": [2, 3], "x": 1})
    assert stable_digest({"x": 1}) != stable_digest({"x": 2})
    assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'


def test_spec_fingerprints_are_stable_and_content_addressed():
    a = ConvolutionSpec.gaussian(5)
    b = ConvolutionSpec.gaussian(5)
    c = ConvolutionSpec.gaussian(7)
    assert a.fingerprint() == b.fingerprint()
    assert a.fingerprint() != c.fingerprint()
    assert a == b and hash(a) == hash(b)
    stencil = CATALOG["2d5pt"].spec
    assert stencil.fingerprint() == CATALOG["2d5pt"].spec.fingerprint()
    assert stencil.fingerprint() != CATALOG["3d7pt"].spec.fingerprint()


def test_plan_and_launch_config_serialise():
    plan = plan_convolution(ConvolutionSpec.gaussian(5))
    config = plan.launch_config(512, 512)
    assert config.to_dict()["precision"] == "float32"
    assert config.fingerprint() == config.fingerprint()
    assert plan.to_dict()["problem"] == plan.problem.fingerprint()
    assert len(plan.fingerprint()) == 16


# ------------------------------------------------------------------ results

def _sample_result():
    measurements = [
        Measurement(kernel="ssam", architecture="p100", workload="3x3",
                    config={"grid_dim": (4, 4, 1)}, counters={"fma": 10.0},
                    milliseconds=1.25, value=1.25, unit="ms",
                    extra={"matches_paper": True}),
        Measurement(kernel="npp", architecture="p100", workload="3x3",
                    value=None),
    ]
    return ExperimentResult(experiment="demo", title="Demo", quick=True,
                            measurements=measurements,
                            metadata={"panels": {"a": {"sizes": (3,)}}})


def test_result_round_trips_through_json(tmp_path):
    result = _sample_result()
    path = str(tmp_path / "demo.json")
    result.save(path)
    loaded = load_result(path)
    assert loaded == result
    assert loaded.measurements[0].config["grid_dim"] == [4, 4, 1]
    assert loaded.series_value("ssam", "p100", "3x3") == 1.25
    assert loaded.rows()[0] == {"matches_paper": True}


def test_result_rejects_unknown_schema_version(tmp_path):
    bad = dict(_sample_result().to_dict(), schema_version=SCHEMA_VERSION + 1)
    with pytest.raises(ConfigurationError):
        ExperimentResult.from_dict(bad)


# --------------------------------------------------------------------- jobs

def _echo_worker(**params):
    return {"echo": params}


def test_execute_job_resolves_and_normalises():
    job = SimulationJob(key="t:1", func="tests.test_results_and_cache:_echo_worker",
                        params={"x": (1, 2)})
    key, payload = execute_job(job)
    assert key == "t:1"
    assert payload == {"echo": {"x": [1, 2]}}
    assert resolve_worker("repro.experiments.table1:_measure_rows")


def test_resolve_worker_rejects_bad_paths():
    with pytest.raises(ConfigurationError):
        resolve_worker("no-colon")
    with pytest.raises(ConfigurationError):
        resolve_worker("repro.experiments.table1:nope")


def test_dedupe_jobs_detects_conflicts():
    a = SimulationJob(key="k", func="m:f", params={"x": 1})
    same = SimulationJob(key="k", func="m:f", params={"x": 1})
    conflict = SimulationJob(key="k", func="m:f", params={"x": 2})
    assert dedupe_jobs([a, same]) == [a]
    with pytest.raises(ConfigurationError):
        dedupe_jobs([a, conflict])


# -------------------------------------------------------------------- cache

def test_cache_lookup_store_round_trip(tmp_path):
    cache = SimulationCache(str(tmp_path / "c"))
    key = {"func": "f", "params": {"n": 1}, "kernel": "k"}
    assert cache.lookup(key) is None
    cache.store(key, {"value": 1.5})
    assert cache.lookup(key) == {"value": 1.5}
    assert cache.lookup({**key, "kernel": "other"}) is None
    assert cache.stats() == {"hits": 1, "misses": 2, "stores": 1}
    assert cache.entry_count() == 1


def test_cache_disabled_stores_nothing(tmp_path):
    cache = SimulationCache(str(tmp_path / "c"), enabled=False)
    cache.store({"k": 1}, {"v": 2})
    assert cache.lookup({"k": 1}) is None
    assert cache.entry_count() == 0


def test_cache_key_includes_code_version(tmp_path):
    cache = SimulationCache(str(tmp_path / "c"))
    assert code_version() == code_version()
    path = cache.entry_path({"func": "f"})
    assert str(tmp_path) in path and path.endswith(".json")


def test_execute_jobs_uses_cache_and_preserves_payloads(tmp_path):
    cache = SimulationCache(str(tmp_path / "c"))
    jobs = [SimulationJob(key=f"t:{i}",
                          func="tests.test_results_and_cache:_echo_worker",
                          params={"i": i}) for i in range(3)]
    first = execute_jobs(jobs, workers=1, cache=cache)
    assert cache.stats()["stores"] == 3
    second = execute_jobs(jobs, workers=1, cache=cache)
    assert second == first
    assert cache.stats()["hits"] == 3


def test_parallel_pool_payloads_store_back_under_the_correct_keys(tmp_path):
    """Payloads computed by pool workers must land in the persistent cache.

    The workers run in separate processes, so the store-back happens in the
    parent after the pool drains; a warm rerun with ``workers > 1`` must be
    a 100% hit, and every payload must be retrievable under its own job's
    ``cache_key()``.
    """
    cache = SimulationCache(str(tmp_path / "c"))
    jobs = [SimulationJob(key=f"p:{i}",
                          func="tests.test_results_and_cache:_echo_worker",
                          params={"i": i},
                          cache_fields={"kernel": "echo", "cell": i})
            for i in range(6)]
    cold = execute_jobs(jobs, workers=3, cache=cache)
    assert cache.stats() == {"hits": 0, "misses": 6, "stores": 6}
    # each payload sits under its own key — not swapped, not merged
    for job in jobs:
        assert cache.lookup(job.cache_key()) == cold[job.key]

    warm_cache = SimulationCache(str(tmp_path / "c"))
    warm = execute_jobs(jobs, workers=3, cache=warm_cache)
    assert warm == cold
    assert warm_cache.stats() == {"hits": 6, "misses": 0, "stores": 0}


# ------------------------------------------------- execute_job contract

def test_execute_job_accepts_only_simulation_jobs():
    """One calling convention: the legacy ``(key, func, params)`` tuple is
    rejected, so the inline and pool paths cannot silently diverge."""
    with pytest.raises(ConfigurationError):
        execute_job(("t:1", "tests.test_results_and_cache:_echo_worker", {}))


def test_single_miss_with_many_workers_runs_through_the_same_contract(tmp_path):
    """``workers > 1`` with exactly one miss skips the pool on purpose —
    but the inline shortcut must produce the same payload (and store it
    back) as the pool path would."""
    cache = SimulationCache(str(tmp_path / "c"))
    jobs = [SimulationJob(key=f"s:{i}",
                          func="tests.test_results_and_cache:_echo_worker",
                          params={"i": i}) for i in range(2)]
    # prime one of the two jobs so the next run has a single miss
    first = execute_jobs(jobs[:1], workers=1, cache=cache)
    assert cache.stats()["stores"] == 1

    mixed = execute_jobs(jobs, workers=4, cache=cache)
    assert mixed["s:0"] == first["s:0"]
    assert mixed["s:1"] == {"echo": {"i": 1}}
    assert cache.stats()["hits"] == 1 and cache.stats()["stores"] == 2

    # the warm rerun serves both from the cache regardless of worker count
    warm_cache = SimulationCache(str(tmp_path / "c"))
    assert execute_jobs(jobs, workers=4, cache=warm_cache) == mixed
    assert warm_cache.stats() == {"hits": 2, "misses": 0, "stores": 0}
