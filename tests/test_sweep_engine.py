"""Sweep engine tests: expansion -> jobs -> cached pipeline -> artifacts."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments import load_result, runner
from repro.experiments.cache import SimulationCache
from repro.scenarios import expand_matrix
from repro.scenarios.sweep import (
    MATRICES,
    jobs,
    load_matrix,
    render,
    run_sweep,
)


def test_load_matrix_presets_and_files(tmp_path):
    preset = load_matrix("tier1")
    assert preset["name"] == "tier1"
    # presets are copied: mutating the result must not corrupt the table
    preset["scenarios"] = "baseline"
    assert MATRICES["tier1"]["scenarios"] == "ssam"
    path = tmp_path / "custom.json"
    path.write_text(json.dumps({"scenarios": ["scan"],
                                "architectures": ["p100"],
                                "precisions": ["float32"],
                                "engines": ["scalar"],
                                "sizes": ["tiny"]}))
    from_file = load_matrix(str(path))
    assert from_file["name"] == "custom"
    assert [c.case_id for c in expand_matrix(from_file)] == \
        ["scan:p100:float32:scalar:tiny"]
    with pytest.raises(ConfigurationError):
        load_matrix("no-such-preset")
    with pytest.raises(ConfigurationError):
        load_matrix("no-such-file.json")  # typo'd paths fail cleanly too
    bad = tmp_path / "bad.json"
    bad.write_text("[1, 2, 3]")
    with pytest.raises(ConfigurationError):
        load_matrix(str(bad))


def test_jobs_have_unique_keys_and_scenario_cache_fields():
    pending = jobs("tier1")
    keys = [job.key for job in pending]
    # 10 SSAM kernels x 4 architectures x 2 precisions x 3 engines
    assert len(keys) == len(set(keys)) == 240
    for job in pending:
        assert job.func == "repro.scenarios.sweep:_measure_case"
        fields = dict(job.cache_fields)
        assert {"kernel", "architecture", "precision", "engine",
                "size"} <= set(fields)
    # the SSAM conv2d cells carry their plan fingerprint in the cache key
    conv2d = [dict(j.cache_fields) for j in pending
              if dict(j.cache_fields)["kernel"] == "conv2d"]
    assert conv2d and all("plan" in f for f in conv2d)


def test_sweep_is_deterministic_and_artifacts_round_trip(tmp_path):
    first = run_sweep("smoke")
    second = run_sweep("smoke")
    assert first == second
    assert render(first) == render(second)
    path = first.save(str(tmp_path / "sweep.json"))
    assert load_result(path) == first
    assert render(load_result(path)) == render(first)


def test_sweep_parallel_matches_serial():
    serial = run_sweep("smoke", workers=1)
    parallel = run_sweep("smoke", workers=2)
    assert parallel == serial


def test_sweep_reuses_the_persistent_cache(tmp_path):
    cache = SimulationCache(str(tmp_path / "cache"))
    cold = run_sweep("smoke", cache=cache)
    assert cache.misses == len(jobs("smoke")) and cache.hits == 0
    warm_cache = SimulationCache(str(tmp_path / "cache"))
    warm = run_sweep("smoke", cache=warm_cache)
    assert warm_cache.misses == 0
    assert warm_cache.hits == len(jobs("smoke"))
    assert warm == cold
    assert render(warm) == render(cold)


def test_paper_matrix_is_closed_form_and_covers_all_kernels():
    cases = expand_matrix(load_matrix("paper"))
    assert cases and all(c.engine in ("analytic", "model") for c in cases)
    all_ssam = {"conv1d", "conv2d", "stencil2d", "stencil3d", "scan",
                "stencil2d-order4", "stencil2d-order6", "stencil2d-varcoef",
                "stencil2d-masked", "conv2d-pipeline"}
    assert {c.scenario for c in cases} == all_ssam
    # the model engine unlocks paper scale for every SSAM kernel
    assert {c.scenario for c in cases if c.engine == "model"} == all_ssam
    # paper scale spans the post-paper architecture axis too
    assert {c.architecture for c in cases} == {"p100", "v100", "a100", "h100"}
    from repro.scenarios.sweep import _measure_case

    payload = _measure_case("conv2d", "p100", "float32", "analytic", "paper")
    assert payload["output_digest"] is None
    assert payload["milliseconds"] > 0
    assert "oracle_max_abs_error" not in payload


def test_model_cells_run_closed_form_with_model_metadata():
    from repro.scenarios.sweep import _measure_case

    payload = _measure_case("scan", "v100", "float64", "model", "paper")
    assert payload["output_digest"] is None
    assert payload["milliseconds"] > 0
    assert payload["kernel_name"] == "ssam_scan_model"
    assert payload["parameters"]["engine"] == "model"
    assert payload["parameters"]["scheme"] == "register_cache"
    assert payload["parameters"]["occupancy"] > 0


def test_functional_cells_record_oracle_error():
    from repro.scenarios.sweep import _measure_case

    payload = _measure_case("stencil2d", "p100", "float64", "batched", "tiny")
    assert payload["output_digest"] is not None
    assert payload["oracle_max_abs_error"] <= 1e-9


# --------------------------------------------------------------- CLI path

def _main(args, capsys):
    code = runner.main(args)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_sweep_cli_produces_deterministic_json_artifacts(tmp_path, capsys):
    out_dir = tmp_path / "artifacts"
    cache_dir = tmp_path / "cache"
    args = ["--experiment", "sweep", "--matrix", "smoke",
            "--cache-dir", str(cache_dir), "--output-dir", str(out_dir)]
    code, first_out, _ = _main(args, capsys)
    assert code == 0
    assert "Scenario sweep" in first_out
    artifact = out_dir / "sweep.json"
    assert artifact.exists()
    first_bytes = artifact.read_bytes()
    loaded = load_result(str(artifact))
    assert runner.render_result("sweep", loaded) in first_out
    # warm rerun: identical text, identical artifact bytes, served from cache
    code, second_out, err = _main(args, capsys)
    assert code == 0
    assert second_out == first_out
    assert "0 misses" in err
    assert artifact.read_bytes() == first_bytes


def test_sweep_cli_quick_defaults_to_smoke_matrix(capsys):
    code, out, _ = _main(["--experiment", "sweep", "--quick", "--no-cache"],
                         capsys)
    assert code == 0
    assert "matrix 'smoke'" in out


def test_sweep_cli_accepts_matrix_files(tmp_path, capsys):
    path = tmp_path / "mine.json"
    path.write_text(json.dumps({"scenarios": ["scan"],
                                "architectures": ["v100"],
                                "precisions": ["float32"],
                                "engines": ["batched"],
                                "sizes": ["tiny"]}))
    code, out, _ = _main(["--experiment", "sweep", "--matrix", str(path),
                          "--no-cache"], capsys)
    assert code == 0
    assert "matrix 'mine'" in out
    assert "scan:v100:float32:batched:tiny" in out


def test_matrix_flag_requires_sweep_experiment(capsys):
    with pytest.raises(SystemExit) as excinfo:
        runner.main(["--experiment", "table1", "--matrix", "smoke"])
    assert excinfo.value.code == 2
    assert "--matrix requires" in capsys.readouterr().err
