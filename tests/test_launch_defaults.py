"""Tests for the launch-default resolution chain (explicit -> tuned -> paper).

Covers every fallback of the chain one at a time — no database, database
file missing, row missing, row stale under a different code digest,
explicit overrides beating tuned rows — plus the activation mechanics
(``SSAM_TUNED_DB`` environment variable and the :func:`tuning_database`
context manager), the planner integration that records the resolution
source on result records, and the determinism of sharded sweeps while a
tuning database is active.
"""

from __future__ import annotations

import pytest

from repro.core.launch_defaults import (
    PAPER_LAUNCH_DEFAULTS,
    TUNED_DB_ENV,
    active_tuning_database,
    clear_lookup_cache,
    lookup_tuned_config,
    resolve_launch_defaults,
    tuning_database,
)
from repro.errors import ConfigurationError
from repro.scenarios import get_scenario
from repro.scenarios.registry import LAUNCH_DEFAULTS_SOURCE_KEY
from repro.scenarios.sweep import run_sweep
from repro.service.store import ResultStore

TUNED_KWARGS = {"outputs_per_thread": 2, "block_threads": 64}


@pytest.fixture(autouse=True)
def no_ambient_database(monkeypatch):
    """Shield every test from a tuning database leaking in from outside."""
    monkeypatch.delenv(TUNED_DB_ENV, raising=False)
    clear_lookup_cache()
    yield
    clear_lookup_cache()


@pytest.fixture
def tuned_db(tmp_path):
    """A result store holding one tuned conv2d cell, at the current digest."""
    path = str(tmp_path / "results.sqlite")
    store = ResultStore(path)
    store.put_tuned_config("conv2d", "p100", "float32", "paper",
                           TUNED_KWARGS, model_ms=1.5, default_model_ms=3.0,
                           speedup=2.0, search="guided", confirmed=True)
    store.close()
    return path


# -------------------------------------------------------------- chain steps

def test_no_database_resolves_to_the_paper_constants():
    resolved = resolve_launch_defaults(
        ("outputs_per_thread", "block_threads"), architecture="p100",
        precision="float32", scenario="conv2d")
    assert resolved.values == {"outputs_per_thread": 4, "block_threads": 128}
    assert resolved.source == "paper"
    assert resolved.tuned_ms is None


def test_explicit_values_always_win(tuned_db):
    with tuning_database(tuned_db):
        resolved = resolve_launch_defaults(
            ("outputs_per_thread", "block_threads"), architecture="p100",
            precision="float32", scenario="conv2d",
            explicit={"outputs_per_thread": 8, "block_threads": 512})
    assert resolved.values == {"outputs_per_thread": 8, "block_threads": 512}
    assert resolved.source == "explicit"


def test_tuned_row_resolves_through_the_chain(tuned_db):
    with tuning_database(tuned_db):
        resolved = resolve_launch_defaults(
            ("outputs_per_thread", "block_threads"), architecture="p100",
            precision="float32", scenario="conv2d")
    assert resolved.values == TUNED_KWARGS
    assert resolved.source == "tuned"
    assert resolved.tuned_ms == 1.5


def test_partial_explicit_pins_remaining_axes_to_paper(tuned_db):
    """The tuned step is all-or-nothing: any explicit value keeps tuned
    rows out entirely, so a partially specified point (e.g. a canonical
    R-elided tuner candidate) executes exactly the configuration its label
    claims — unspecified axes resolve from the paper constants, never from
    the database."""
    with tuning_database(tuned_db):
        resolved = resolve_launch_defaults(
            ("outputs_per_thread", "block_threads", "block_rows"),
            architecture="p100", precision="float32", scenario="conv2d",
            explicit={"outputs_per_thread": 6, "block_rows": None})
    assert resolved.values == {"outputs_per_thread": 6, "block_threads": 128,
                               "block_rows": 1}
    assert resolved.sources == {"outputs_per_thread": "explicit",
                                "block_threads": "paper",
                                "block_rows": "paper"}
    assert resolved.source == "explicit+paper"


def test_explicit_candidate_points_keep_their_identity(tuned_db):
    """A canonical R-elided explicit point {P, B} must not pick up tuned
    values on its elided axes — the regression the all-or-nothing rule
    exists for (tuner re-runs and sweep grids would otherwise silently
    measure different configurations than their case ids claim)."""
    with tuning_database(tuned_db):
        resolved = resolve_launch_defaults(
            ("outputs_per_thread", "block_threads", "block_rows"),
            architecture="p100", precision="float32", scenario="conv2d",
            explicit={"outputs_per_thread": 4, "block_threads": 128})
    assert resolved.values == {"outputs_per_thread": 4, "block_threads": 128,
                               "block_rows": 1}
    assert "tuned" not in resolved.source


def test_missing_database_file_falls_back_to_paper(tmp_path):
    with tuning_database(str(tmp_path / "does-not-exist.sqlite")):
        resolved = resolve_launch_defaults(
            ("block_threads",), architecture="p100", precision="float32",
            scenario="conv2d")
    assert resolved.values == {"block_threads": 128}
    assert resolved.source == "paper"


def test_untuned_cell_falls_back_to_paper(tuned_db):
    with tuning_database(tuned_db):
        resolved = resolve_launch_defaults(
            ("outputs_per_thread",), architecture="h100",
            precision="float64", scenario="conv2d")
    assert resolved.source == "paper"


def test_stale_code_digest_is_never_served(tmp_path):
    path = str(tmp_path / "results.sqlite")
    store = ResultStore(path)
    store.put_tuned_config("conv2d", "p100", "float32", "paper",
                           TUNED_KWARGS, code_version="someone-elses-tree")
    store.close()
    with tuning_database(path):
        assert lookup_tuned_config("conv2d", "p100", "float32") is None
        resolved = resolve_launch_defaults(
            ("outputs_per_thread", "block_threads"), architecture="p100",
            precision="float32", scenario="conv2d")
    assert resolved.source == "paper"
    assert resolved.values == {"outputs_per_thread": 4, "block_threads": 128}


def test_no_scenario_identity_means_paper_regardless_of_database(tuned_db):
    """Direct kernel calls carry no scenario key; ambient state must not
    change what they compute."""
    with tuning_database(tuned_db):
        resolved = resolve_launch_defaults(
            ("outputs_per_thread", "block_threads"), architecture="p100",
            precision="float32", scenario=None)
    assert resolved.values == {"outputs_per_thread": 4, "block_threads": 128}
    assert resolved.source == "paper"


def test_unknown_parameter_raises():
    with pytest.raises(ConfigurationError, match="unknown launch parameter"):
        resolve_launch_defaults(("warp_speed",))


# -------------------------------------------------------------- activation

def test_env_var_activates_a_cache_directory(tuned_db, tmp_path, monkeypatch):
    # the env var accepts the cache directory, not just the sqlite file
    monkeypatch.setenv(TUNED_DB_ENV, str(tmp_path))
    clear_lookup_cache()
    assert active_tuning_database() == str(tmp_path)
    found = lookup_tuned_config("conv2d", "p100", "float32")
    assert found is not None
    assert found["plan_kwargs"] == TUNED_KWARGS
    assert found["search"] == "guided"
    assert found["confirmed"] is True


def test_context_manager_restores_prior_state(tuned_db, monkeypatch):
    monkeypatch.setenv(TUNED_DB_ENV, "ambient.sqlite")
    with tuning_database(tuned_db):
        assert active_tuning_database() == tuned_db
        # None deactivates, shielding a block from the ambient variable
        with tuning_database(None):
            assert active_tuning_database() is None
        assert active_tuning_database() == tuned_db
    assert active_tuning_database() == "ambient.sqlite"


# ------------------------------------------------------ planner integration

def test_planner_consumes_tuned_defaults(tuned_db):
    conv2d = get_scenario("conv2d")
    baseline = conv2d.build_plan("tiny", "p100", "float32")
    assert baseline.outputs_per_thread == PAPER_LAUNCH_DEFAULTS[
        "outputs_per_thread"]
    assert baseline.block_threads == PAPER_LAUNCH_DEFAULTS["block_threads"]
    with tuning_database(tuned_db):
        tuned = conv2d.build_plan("tiny", "p100", "float32")
        # explicit plan_kwargs keep the database out entirely: the pinned
        # P rides with the paper B, not the tuned one (all-or-nothing)
        pinned = conv2d.build_plan("tiny", "p100", "float32",
                                   plan_kwargs={"outputs_per_thread": 8})
    assert tuned.outputs_per_thread == 2
    assert tuned.block_threads == 64
    assert pinned.outputs_per_thread == 8
    assert pinned.block_threads == PAPER_LAUNCH_DEFAULTS["block_threads"]


def test_resolution_source_is_recorded_on_the_params(tuned_db):
    conv2d = get_scenario("conv2d")
    plain = conv2d.resolve_tunable_defaults({}, "p100", "float32")
    assert plain[LAUNCH_DEFAULTS_SOURCE_KEY] == "paper"
    with tuning_database(tuned_db):
        tuned = conv2d.resolve_tunable_defaults({}, "p100", "float32")
        other = conv2d.resolve_tunable_defaults({}, "v100", "float32")
    # canonical tuned rows never spell out block_rows=1, so conv2d's R axis
    # still resolves from the paper constant
    assert tuned[LAUNCH_DEFAULTS_SOURCE_KEY] == "tuned+paper"
    assert tuned["outputs_per_thread"] == 2
    assert other[LAUNCH_DEFAULTS_SOURCE_KEY] == "paper"


def test_cached_payloads_replay_with_current_provenance(tmp_path):
    """A tuned row whose values equal the paper constants builds a
    byte-identical plan (same cache key), so payloads cached without a
    database replay under an active one.  Provenance is computed at
    assemble time from current state — a cached cell must not report a
    stale ``"paper"`` label once a database is active (or vice versa)."""
    import os

    from repro.experiments.cache import SimulationCache

    cache_dir = str(tmp_path)
    store = ResultStore(os.path.join(cache_dir, "results.sqlite"))
    store.put_tuned_config(
        "conv2d", "p100", "float32", "paper",
        {"outputs_per_thread": PAPER_LAUNCH_DEFAULTS["outputs_per_thread"],
         "block_threads": PAPER_LAUNCH_DEFAULTS["block_threads"]})
    store.close()
    matrix = {"scenarios": ["conv2d"], "architectures": ["p100"],
              "precisions": ["float32"], "engines": ["scalar"],
              "sizes": ["tiny"]}
    cold_cache = SimulationCache(cache_dir)
    cold = run_sweep(matrix, cache=cold_cache)
    assert cold_cache.misses > 0
    for measurement in cold.measurements:
        assert measurement.extra["launch_defaults_source"] == "paper"
    warm_cache = SimulationCache(cache_dir)
    with tuning_database(cache_dir):
        warm = run_sweep(matrix, cache=warm_cache)
    # same plan, same cache identity: the warm run executes nothing new
    assert warm_cache.misses == 0 and warm_cache.hits == cold_cache.misses
    for measurement in warm.measurements:
        assert measurement.extra["launch_defaults_source"] == "tuned+paper"


def test_sweeps_record_the_source_and_stay_deterministic_across_workers(
        tuned_db):
    matrix = {"scenarios": ["conv2d"], "architectures": ["p100"],
              "precisions": ["float32"], "engines": ["scalar", "batched"],
              "sizes": ["tiny"]}
    with tuning_database(tuned_db):
        serial = run_sweep(matrix, workers=1)
        # the env var rides into pool workers, so shards resolve identically
        sharded = run_sweep(matrix, workers=2)
    ambient_free = run_sweep(matrix, workers=1)
    assert serial == sharded
    for measurement in serial.measurements:
        assert measurement.extra["launch_defaults_source"] == "tuned+paper"
    for measurement in ambient_free.measurements:
        assert measurement.extra["launch_defaults_source"] == "paper"
    # the tuned plan really is a different kernel configuration
    assert serial != ambient_free
