"""Unit tests for the compiled replay engine's internals.

The differential matrix (``test_scenario_matrix.py``) proves whole-launch
bit-identity; this file pins the replay engine's *internal* fast paths
against their exact reference implementations and the engine-level
contracts the fast paths must preserve: transaction counting against the
segmented-sort primitive, interval-union traffic finalization against a
brute-force set union, counter memoization, and the untraceable-kernel
fallback.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gpu.kernel import Kernel, LaunchConfig
from repro.gpu.memory import GlobalMemory, rowwise_unique_counts
from repro.kernels.conv2d_ssam import CONV2D_SSAM_KERNEL, ssam_convolve2d
from repro.convolution.spec import ConvolutionSpec
from repro.trace.replay import (
    _block_index_matrix,
    _interval_union_sum,
    _line_shift,
    _transactions,
)


# --------------------------------------------------------------- _transactions

def _reference_transactions(wm, mm):
    return int(rowwise_unique_counts(wm, mm).sum())


@pytest.mark.parametrize("seed", range(5))
def test_transactions_sorted_unmasked(seed):
    rng = np.random.default_rng(seed)
    wm = np.sort(rng.integers(0, 40, size=(23, 32)), axis=1)
    trans, d, ok = _transactions(wm, None)
    assert ok and d is not None
    assert trans == _reference_transactions(wm, None)


@pytest.mark.parametrize("seed", range(5))
def test_transactions_contiguous_run_masks(seed):
    """The SSAM mask shape: each row's active lanes form one run 0*1*0*."""
    rng = np.random.default_rng(100 + seed)
    rows, width = 17, 32
    wm = np.sort(rng.integers(0, 60, size=(rows, width)), axis=1)
    mm = np.zeros((rows, width), dtype=bool)
    for r in range(rows):
        start = int(rng.integers(0, width))
        stop = int(rng.integers(start, width + 1))
        mm[r, start:stop] = True
    trans, _, ok = _transactions(wm, mm)
    assert ok
    assert trans == _reference_transactions(wm, mm)


def test_transactions_arbitrary_masks_match_reference():
    rng = np.random.default_rng(7)
    wm = np.sort(rng.integers(0, 25, size=(31, 32)), axis=1)
    mm = rng.random((31, 32)) < 0.6  # scattered runs: not contiguous
    trans, _, ok = _transactions(wm, mm)
    assert ok
    assert trans == _reference_transactions(wm, mm)


def test_transactions_unsorted_falls_back_exactly():
    rng = np.random.default_rng(8)
    wm = rng.integers(0, 25, size=(19, 32))
    assert np.any(wm[:, 1:] < wm[:, :-1])  # genuinely unsorted
    mm = rng.random((19, 32)) < 0.5
    trans, d, ok = _transactions(wm, mm)
    assert not ok and d is None
    assert trans == _reference_transactions(wm, mm)


def test_transactions_single_lane():
    wm = np.arange(6).reshape(6, 1)
    assert _transactions(wm, None)[0] == 6
    mm = np.array([[True], [False], [True], [False], [True], [False]])
    assert _transactions(wm, mm)[0] == 3


# --------------------------------------------------------- _interval_union_sum

@pytest.mark.parametrize("seed", range(5))
def test_interval_union_sum_matches_set_union(seed):
    rng = np.random.default_rng(seed)
    rows, k = 13, 7
    los = rng.integers(0, 50, size=(rows, k))
    his = los + rng.integers(0, 20, size=(rows, k))
    expected = sum(
        len(set().union(*(range(lo, hi + 1) for lo, hi in zip(lr, hr))))
        for lr, hr in zip(los, his))
    assert _interval_union_sum(los, his) == expected


# ----------------------------------------------------------------- _line_shift

def test_line_shift_powers_of_two():
    assert _line_shift(4, 128) == 5   # 32 items per line
    assert _line_shift(8, 128) == 4
    assert _line_shift(2, 128) == 6
    assert _line_shift(4, 96) is None   # not divisible into a power of two
    idx = np.arange(1000, dtype=np.int64)
    assert np.array_equal(idx >> _line_shift(4, 128), (idx * 4) // 128)


# --------------------------------------------------------- _block_index_matrix

def test_block_index_matrix_matches_launch_order():
    grid = (3, 4, 2)
    out = _block_index_matrix(grid)
    expected = [(bx, by, bz)
                for bz in range(grid[2])
                for by in range(grid[1])
                for bx in range(grid[0])]
    assert out.shape == (24, 3)
    assert [tuple(row) for row in out] == expected


# ----------------------------------------------------------------- memoization

def test_counter_memoization_is_exact():
    """Warm launches reuse cached counters; values must be bit-identical."""
    spec = ConvolutionSpec.gaussian(5)
    image = np.random.default_rng(3).random((80, 96), dtype=np.float32)
    CONV2D_SSAM_KERNEL._trace_cache.clear()  # hermetic: other tests compile too
    cold = ssam_convolve2d(image, spec, batch_size="replay")
    program = next(p for p in CONV2D_SSAM_KERNEL._trace_cache.values()
                   if p is not None)
    assert program.memoizable  # SSAM indices are data-free by construction
    assert program.counter_cache  # populated by the completed launch
    warm = ssam_convolve2d(image, spec, batch_size="replay")
    np.testing.assert_array_equal(warm.output, cold.output)
    assert warm.launch.counters.as_dict() == cold.launch.counters.as_dict()


def test_memoized_counters_match_batched():
    spec = ConvolutionSpec.gaussian(5)
    image = np.random.default_rng(4).random((64, 96), dtype=np.float32)
    ssam_convolve2d(image, spec, batch_size="replay")  # cold: fills cache
    warm = ssam_convolve2d(image, spec, batch_size="replay")
    batched = ssam_convolve2d(image, spec, batch_size="auto")
    assert warm.launch.counters.as_dict() == batched.launch.counters.as_dict()


# ------------------------------------------------------------------- fallback

def _branchy_kernel(ctx, src, dst, size):
    idx = np.minimum(ctx.thread_idx_x, size - 1)
    values = ctx.load_global(src, idx, mask=ctx.thread_idx_x < size)
    if np.max(values) > 0:  # data-dependent host branch: untraceable
        values = values + 1.0
    ctx.store_global(dst, idx, values, mask=ctx.thread_idx_x < size)


BRANCHY = Kernel(_branchy_kernel, name="branchy")


def test_untraceable_kernel_falls_back_to_batched():
    memory = GlobalMemory()
    data = np.random.default_rng(5).random(100).astype(np.float32)
    src = memory.to_device(data, name="src")
    dst_replay = memory.allocate((128,), "float32", name="dst_replay")
    dst_batched = memory.allocate((128,), "float32", name="dst_batched")
    config = LaunchConfig(grid_dim=(1, 1, 1), block_threads=128)

    replay = BRANCHY.launch(config, (src, dst_replay, 100),
                            batch_size="replay")
    batched = BRANCHY.launch(config, (src, dst_batched, 100),
                             batch_size="auto")
    np.testing.assert_array_equal(dst_replay.to_host(), dst_batched.to_host())
    assert replay.counters.as_dict() == batched.counters.as_dict()
    # the failed trace is negatively cached: no re-recording on reuse
    assert any(p is None for p in BRANCHY._trace_cache.values())


def test_replay_bounds_error_matches_eager():
    def oob(ctx, src, dst, size):
        idx = ctx.thread_idx_x + 1  # last thread runs off the end
        ctx.store_global(dst, idx, ctx.load_global(src, idx))

    kernel = Kernel(oob, name="oob")
    memory = GlobalMemory()
    src = memory.to_device(np.zeros(128, dtype=np.float32), name="input")
    dst = memory.allocate((128,), "float32", name="output")
    config = LaunchConfig(grid_dim=(1, 1, 1), block_threads=128)
    with pytest.raises(SimulationError, match="out-of-bounds global load"):
        kernel.launch(config, (src, dst, 128), batch_size="replay")
